"""End-to-end fault campaigns: inject faults, recover, prove serial identity.

A campaign is the tentpole acceptance test of the fault-tolerance layer,
packaged as a library call (the CLI ``faults`` subcommand and the
``bench_fault_soak`` benchmark are thin wrappers over it):

1. **Baseline** -- run a serial, fault-free swarm exploration of the target
   workload and digest its canonical :meth:`ExplorationResult.signature`.
2. **Faulted run** -- repeat the same campaign through the multi-process
   engine with a seeded :class:`~repro.faults.plan.FaultPlan` injecting
   worker crashes and hangs.  The run must *survive* (retries, pool
   rebuilds, watchdog kills) and its signature must be **bit-identical** to
   the baseline -- recovery is only correct if it is invisible in the
   result.
3. **Log corruption round** -- produce a pristine framed log, damage copies
   of it per the plan's torn/bit-flip faults, and check that
   :func:`~repro.core.log.recover_log` salvages exactly a prefix of the
   pristine records and reports the corruption offset.  (Record *splices*
   are excluded here: plain CRC framing cannot see a reorder -- which is
   exactly what the next round demonstrates the chain catching.)
4. **Chain round** -- repeat the damage against a *chained* (``VYRDLOG2``)
   copy of the same log, now including frame-splice tampering, and require
   :func:`~repro.core.log.verify_chain` (anchored to the pristine head
   digest) to detect **every** injected fault while
   :func:`~repro.core.log.recover_log` still salvages an exact chain-valid
   prefix -- the streaming service's tamper-evidence gate.
5. **Latency round** (when the plan carries ``slow_io`` faults) -- re-run
   the workload under a :class:`~repro.faults.inject.LatencyTracer` and
   check the produced log is action-for-action identical: injected I/O
   latency must never perturb the deterministic schedule.
6. **Checkpoint round** -- for the clean *and* the seeded-bug variant of the
   workload, checkpoint the refinement checker mid-log ("kill" it), restore
   a fresh checker from the serialized bytes and feed the tail; the resumed
   verdict -- including every violation's sequence numbers -- must be
   byte-identical to the straight-through run.  A bit-flipped checkpoint
   must be rejected with :class:`~repro.core.CheckpointError` and the
   record-zero fallback replay must reproduce the same verdict.
7. **Producer-kill round** -- serve the workload with the producer
   subprocess dying abruptly (``os._exit``) mid-session under a
   :class:`~repro.serve.supervise.ProducerSupervisor`; the supervisor must
   salvage, restart within its bounded budget, and the final stream
   signature, chain audit and verdict must be byte-identical to an
   uninterrupted serve of the same seed (clean and seeded-bug variants).
8. **Store-brownout round** -- serve through a
   :class:`~repro.faults.inject.FlakyStore` (seeded transient errors,
   latency spikes, a blackout window) wrapped in a
   :class:`~repro.serve.retry.RetryingStore`; the retries must absorb every
   planned failure (``retries > 0`` proves the brownout actually hit) and
   the verdict/signature must match the pristine-store serve.
9. **Checker-crash catch-up round** -- serve with a checker that crashes
   mid-stream; the session must degrade to record-only mode (not fail),
   keep ingesting, and the offline catch-up verification at drain must
   reproduce the healthy verdict byte for byte.

:class:`FaultCampaignReport.ok` is the conjunction of all gates.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..concurrency.parallel import parallel_swarm
from ..core.log import load_log, recover_log, save_log, verify_chain
from ..harness.runner import ProgramSpec, run_program
from .inject import apply_log_faults
from .plan import SPLICE_LOG, FaultPlan


def _digest(signature: dict) -> str:
    return hashlib.sha256(repr(signature).encode("utf-8")).hexdigest()


@dataclass
class FaultCampaignReport:
    """Everything a soak loop or CI gate needs to judge one campaign."""

    program: str
    seed: int
    jobs: int
    num_runs: int
    plan: dict = field(default_factory=dict)
    baseline_signature: str = ""
    faulted_signature: str = ""
    signatures_match: bool = False
    baseline_seconds: float = 0.0
    faulted_seconds: float = 0.0
    num_failures: int = 0
    interruptions: List[dict] = field(default_factory=list)
    recoveries: List[dict] = field(default_factory=list)
    recovery_ok: bool = True
    chain_checks: List[dict] = field(default_factory=list)
    chain_ok: bool = True  # every injected tamper case detected on chained logs
    tracer_log_identical: Optional[bool] = None  # None: no slow_io planned
    checkpoint_checks: List[dict] = field(default_factory=list)
    checkpoint_ok: bool = True  # kill->resume verdicts byte-identical
    producer_kill_checks: List[dict] = field(default_factory=list)
    producer_kill_ok: bool = True  # supervised restart => identical stream
    brownout_checks: List[dict] = field(default_factory=list)
    brownout_ok: bool = True  # retry layer absorbs planned store faults
    catchup_checks: List[dict] = field(default_factory=list)
    catchup_ok: bool = True  # degraded catch-up reproduces the verdict
    linz_checks: List[dict] = field(default_factory=list)
    linz_ok: bool = True  # linz verdict stable under log recovery

    @property
    def overhead(self) -> Optional[float]:
        """Faulted/baseline wall-clock ratio (None when baseline was ~0)."""
        if self.baseline_seconds <= 1e-9:
            return None
        return self.faulted_seconds / self.baseline_seconds

    @property
    def incident_counts(self) -> dict:
        counts: dict = {}
        for event in self.interruptions:
            kind = event.get("kind", "?")
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    @property
    def ok(self) -> bool:
        return (
            self.signatures_match
            and self.recovery_ok
            and self.chain_ok
            and self.checkpoint_ok
            and self.producer_kill_ok
            and self.brownout_ok
            and self.catchup_ok
            and self.linz_ok
            and self.tracer_log_identical is not False
        )

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "program": self.program,
            "seed": self.seed,
            "jobs": self.jobs,
            "num_runs": self.num_runs,
            "plan": self.plan,
            "baseline_signature": self.baseline_signature,
            "faulted_signature": self.faulted_signature,
            "signatures_match": self.signatures_match,
            "baseline_seconds": round(self.baseline_seconds, 4),
            "faulted_seconds": round(self.faulted_seconds, 4),
            "overhead": (
                round(self.overhead, 3) if self.overhead is not None else None
            ),
            "num_failures": self.num_failures,
            "incidents": self.incident_counts,
            "interruptions": list(self.interruptions),
            "recoveries": list(self.recoveries),
            "recovery_ok": self.recovery_ok,
            "chain_checks": list(self.chain_checks),
            "chain_ok": self.chain_ok,
            "tracer_log_identical": self.tracer_log_identical,
            "checkpoint_checks": list(self.checkpoint_checks),
            "checkpoint_ok": self.checkpoint_ok,
            "producer_kill_checks": list(self.producer_kill_checks),
            "producer_kill_ok": self.producer_kill_ok,
            "brownout_checks": list(self.brownout_checks),
            "brownout_ok": self.brownout_ok,
            "catchup_checks": list(self.catchup_checks),
            "catchup_ok": self.catchup_ok,
            "linz_checks": list(self.linz_checks),
            "linz_ok": self.linz_ok,
        }


def _expected_chunks(num_runs: int, jobs: int) -> int:
    """Mirror parallel_swarm's default chunking to size fault-plan targeting."""
    chunk_size = max(1, -(-num_runs // (jobs * 4)))
    return -(-num_runs // chunk_size)


def _corruption_round(
    program: str,
    plan: FaultPlan,
    workload_seed: int,
    num_threads: int,
    calls_per_thread: int,
) -> tuple:
    """Damage copies of a pristine framed log; verify exact-prefix salvage."""
    recoveries: List[dict] = []
    ok = True
    run = run_program(
        program,
        num_threads=num_threads,
        calls_per_thread=calls_per_thread,
        seed=workload_seed,
    )
    workdir = tempfile.mkdtemp(prefix="vyrd-faults-")
    try:
        pristine_path = os.path.join(workdir, "pristine.vlog")
        save_log(run.log, pristine_path)
        pristine = [repr(action) for action in load_log(pristine_path)]
        for index, fault in enumerate(plan.log_faults):
            if fault.kind == SPLICE_LOG:
                continue  # undetectable on unchained framing; chain round
            victim = os.path.join(workdir, f"victim-{index}.vlog")
            shutil.copyfile(pristine_path, victim)
            applied = apply_log_faults(
                victim, FaultPlan(seed=plan.seed, faults=(fault,))
            )
            recovered = recover_log(victim)
            salvaged = [repr(action) for action in recovered.log]
            prefix_exact = salvaged == pristine[: len(salvaged)]
            # A damaged file must either still be complete (a tear that
            # landed exactly on the final frame boundary) or report where
            # parsing stopped.
            reported = recovered.complete or recovered.error_offset is not None
            entry = {
                "fault": applied[0] if applied else {"kind": fault.kind},
                "salvaged_records": len(salvaged),
                "total_records": len(pristine),
                "prefix_exact": prefix_exact,
                "complete": recovered.complete,
                "valid_bytes": recovered.valid_bytes,
                "total_bytes": recovered.total_bytes,
                "error_offset": recovered.error_offset,
                "cause": recovered.cause,
            }
            entry["ok"] = prefix_exact and reported
            ok = ok and entry["ok"]
            recoveries.append(entry)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return recoveries, ok, run


def _chain_round(plan: FaultPlan, pristine_run) -> tuple:
    """Damage chained copies per every log fault; require 100% detection.

    The pristine run's log is saved in the tamper-evident ``VYRDLOG2``
    format and its head digest recorded (the manifest anchor).  Every log
    fault in the plan -- tears, bit-flips *and* record splices -- must then
    be caught by :func:`verify_chain`, and :func:`recover_log` must salvage
    exactly a chain-valid prefix of the pristine records.
    """
    checks: List[dict] = []
    ok = True
    workdir = tempfile.mkdtemp(prefix="vyrd-chain-")
    try:
        pristine_path = os.path.join(workdir, "pristine.vlog2")
        save_log(pristine_run.log, pristine_path, chained=True)
        pristine_report = verify_chain(pristine_path)
        expected_head = pristine_report.head_digest
        pristine = [repr(action) for action in load_log(pristine_path)]
        for index, fault in enumerate(plan.log_faults):
            victim = os.path.join(workdir, f"victim-{index}.vlog2")
            shutil.copyfile(pristine_path, victim)
            applied = apply_log_faults(
                victim, FaultPlan(seed=plan.seed, faults=(fault,))
            )
            report = verify_chain(victim, expected_head=expected_head)
            recovered = recover_log(victim)
            salvaged = [repr(action) for action in recovered.log]
            prefix_exact = salvaged == pristine[: len(salvaged)]
            entry = {
                "fault": applied[0] if applied else {"kind": fault.kind},
                "detected": report.tampered,
                "error_offset": report.error_offset,
                "error_record": report.error_record,
                "cause": report.cause,
                "head_match": report.head_match,
                "salvaged_records": len(salvaged),
                "total_records": len(pristine),
                "prefix_exact": prefix_exact,
            }
            entry["ok"] = report.tampered and prefix_exact
            ok = ok and entry["ok"]
            checks.append(entry)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return checks, ok


def _checkpoint_round(
    program: str,
    workload_seed: int,
    num_threads: int,
    calls_per_thread: int,
) -> tuple:
    """Kill the checker mid-log, resume from checkpoint bytes, compare verdicts.

    Both the clean and the seeded-bug workload variants are exercised: the
    resumed run must reproduce the straight-through verdict *byte for byte*
    (the violation records carry their sequence numbers, so any replay drift
    shows up in the comparison).  A corrupted checkpoint must raise
    :class:`~repro.core.CheckpointError` and the record-zero fallback must
    again match.
    """
    from ..core import Checkpoint, CheckpointError
    from ..serve.daemon import session_checkers

    checks: List[dict] = []
    ok = True
    for buggy in (False, True):
        run = run_program(
            program,
            buggy=buggy,
            num_threads=num_threads,
            calls_per_thread=calls_per_thread,
            seed=workload_seed,
        )
        log = list(run.log)
        make_checker, _ = session_checkers(program)

        def verdict_of(checker) -> str:
            return json.dumps(checker.finish().to_dict(), sort_keys=True)

        straight = make_checker()
        straight.feed(log)
        expected = verdict_of(straight)

        # "Kill" after half the log: checkpoint, serialize, restore into a
        # fresh checker from the bytes alone, feed the tail.
        cut = len(log) // 2
        killed = make_checker()
        killed.feed(log[:cut])
        blob = killed.checkpoint(meta={"program": program}).to_bytes()
        checkpoint = Checkpoint.from_bytes(blob)
        resumed = make_checker()
        resumed.restore(checkpoint)
        resumed.feed(log[checkpoint.resume_seq:])
        resumed_verdict = verdict_of(resumed)

        # Bit-flip the payload: the content hash must reject it...
        damaged = bytearray(blob)
        damaged[-1] ^= 0xFF
        rejection = None
        try:
            Checkpoint.from_bytes(bytes(damaged))
        except CheckpointError as exc:
            rejection = str(exc)
        # ...and the fallback is a full replay from record zero.
        fallback = make_checker()
        fallback.feed(log)
        fallback_verdict = verdict_of(fallback)

        entry = {
            "buggy": buggy,
            "records": len(log),
            "cut": cut,
            "resume_seq": checkpoint.resume_seq,
            "checkpoint_bytes": len(blob),
            "resumed_identical": resumed_verdict == expected,
            "corrupt_rejected": rejection is not None,
            "rejection": rejection,
            "fallback_identical": fallback_verdict == expected,
            "verdict_ok": straight.outcome.ok,
        }
        entry["ok"] = (
            entry["resumed_identical"]
            and entry["corrupt_rejected"]
            and entry["fallback_identical"]
        )
        ok = ok and entry["ok"]
        checks.append(entry)
    return checks, ok


def _serve_verdict(result) -> str:
    """Canonical JSON of a serve outcome, for byte-identity comparison."""
    outcome = result.outcome.to_dict() if result.outcome else None
    return json.dumps(outcome, sort_keys=True)


def _reference_serve(store, session, program, workload_seed, run_kwargs,
                     **session_kwargs):
    """Produce in-process and verify: the fault-free serve of one seed."""
    from ..serve.daemon import ServeSession, session_checkers
    from ..serve.producer import produce_session

    produce_session(
        store, session, program, seed=workload_seed, num_shards=2,
        run_kwargs=run_kwargs,
    )
    make_checker, _ = session_checkers(program)
    daemon = ServeSession(
        store, session, 2, checker_factory=make_checker,
        timeout=30.0, **session_kwargs,
    )
    return daemon.run()


def _producer_kill_round(
    program: str,
    plan: FaultPlan,
    workload_seed: int,
    num_threads: int,
    calls_per_thread: int,
) -> tuple:
    """Kill the producer mid-session; supervised restart must be invisible.

    The kill point comes from the plan's :data:`PRODUCER_KILL` fault (a
    fraction of the reference record count; 0.5 when none is planned).  The
    gate is total: the supervisor must restart within budget and the final
    signature, verdict and chain audit must be byte-identical to the
    uninterrupted serve -- for the clean and the seeded-bug workload.
    """
    from ..serve.daemon import ServeSession, session_checkers
    from ..serve.store import LocalDirectoryStore
    from ..serve.supervise import ProducerSupervisor, SupervisionPolicy

    checks: List[dict] = []
    ok = True
    kills = plan.producer_faults
    frac = kills[0].frac if kills else 0.5
    make_checker, _ = session_checkers(program)
    for buggy in (False, True):
        run_kwargs = dict(
            buggy=buggy, num_threads=num_threads,
            calls_per_thread=calls_per_thread,
        )
        workdir = tempfile.mkdtemp(prefix="vyrd-pkill-")
        try:
            ref_store = LocalDirectoryStore(os.path.join(workdir, "ref"))
            reference = _reference_serve(
                ref_store, "ref", program, workload_seed, run_kwargs
            )
            records = reference.records
            kill_after = max(1, min(records - 1, int(frac * records)))
            sup_store = LocalDirectoryStore(os.path.join(workdir, "sup"))
            supervisor = ProducerSupervisor(
                sup_store, "sup", program, workload_seed, 2,
                run_kwargs=run_kwargs,
                policy=SupervisionPolicy(
                    max_restarts=2, seed=plan.seed, backoff_base=0.01,
                ),
                kill_after=kill_after,
            )
            daemon = ServeSession(
                sup_store, "sup", 2, checker_factory=make_checker,
                timeout=30.0,
            )
            supervisor.start()
            try:
                result = daemon.run(supervisor)
            finally:
                state = supervisor.finish()
            entry = {
                "buggy": buggy,
                "records": records,
                "kill_after": kill_after,
                "restarts": state.restarts,
                "gave_up": state.gave_up,
                "stream_ok": result.ok,
                "signature_identical": result.signature == reference.signature,
                "verdict_identical": (
                    _serve_verdict(result) == _serve_verdict(reference)
                ),
                "chain_ok": result.chain_ok,
                "verdict_ok": (
                    result.outcome.ok if result.outcome else None
                ),
            }
            entry["ok"] = (
                result.ok
                and not state.gave_up
                and 1 <= state.restarts <= 2
                and entry["signature_identical"]
                and entry["verdict_identical"]
            )
            ok = ok and entry["ok"]
            checks.append(entry)
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
    return checks, ok


def _store_brownout_round(
    program: str,
    plan: FaultPlan,
    workload_seed: int,
    num_threads: int,
    calls_per_thread: int,
) -> tuple:
    """Serve through a browning-out store; the retry layer must absorb it.

    The same produced shards are verified twice: once against the pristine
    in-memory store, once through ``RetryingStore(FlakyStore(store))`` with
    the plan's store faults live.  Identical signature and verdict, plus a
    non-zero retry count (proof the brownout actually bit), pass the gate.
    """
    from ..serve.daemon import ServeSession, session_checkers
    from ..serve.retry import RetryingStore
    from ..serve.store import ObjectStoreStub
    from .inject import FlakyStore
    from .plan import FLAKY_STORE, STORE_OUTAGE, Fault

    store_faults = plan.store_faults
    if not store_faults:
        store_faults = (
            Fault(FLAKY_STORE, frac=0.25, seconds=0.0005, every=32),
            Fault(STORE_OUTAGE, task=64, seconds=0.03),
        )
    brown_plan = FaultPlan(seed=plan.seed, faults=store_faults)
    checks: List[dict] = []
    ok = True
    make_checker, _ = session_checkers(program)
    for buggy in (False, True):
        run_kwargs = dict(
            buggy=buggy, num_threads=num_threads,
            calls_per_thread=calls_per_thread,
        )
        store = ObjectStoreStub()
        reference = _reference_serve(
            store, "ref", program, workload_seed, run_kwargs
        )
        flaky = FlakyStore(store, brown_plan)
        retrying = RetryingStore(
            flaky, retries=4, seed=plan.seed,
            backoff_base=0.005, backoff_max=0.05,
        )
        daemon = ServeSession(
            retrying, "ref", 2, checker_factory=make_checker, timeout=30.0,
        )
        result = daemon.run()
        entry = {
            "buggy": buggy,
            "records": result.records,
            "store_ops": flaky.ops,
            "injected_failures": flaky.failures,
            "latency_stalls": flaky.stalls,
            "retries_absorbed": retrying.stats["retries"],
            "giveups": retrying.stats["giveups"],
            "stream_ok": result.ok,
            "signature_identical": result.signature == reference.signature,
            "verdict_identical": (
                _serve_verdict(result) == _serve_verdict(reference)
            ),
        }
        entry["ok"] = (
            result.ok
            and entry["retries_absorbed"] > 0
            and entry["giveups"] == 0
            and entry["signature_identical"]
            and entry["verdict_identical"]
        )
        ok = ok and entry["ok"]
        checks.append(entry)
    return checks, ok


class _CrashingChecker:
    """Delegating checker wrapper that dies after ``crash_at`` records."""

    def __init__(self, inner, crash_at: int):
        self.inner = inner
        self.crash_at = crash_at
        self.fed = 0

    def feed(self, records):
        self.fed += len(records)
        if self.fed >= self.crash_at:
            raise RuntimeError(
                f"injected checker crash at record {self.fed}"
            )
        return self.inner.feed(records)

    def __getattr__(self, attr):
        return getattr(self.inner, attr)


def _catchup_round(
    program: str,
    workload_seed: int,
    num_threads: int,
    calls_per_thread: int,
) -> tuple:
    """Crash the online checker; degraded catch-up must match the verdict.

    The first checker instance a session builds crashes partway through the
    stream (transient-fault model: the rebuilt catch-up instance runs
    clean).  The session must degrade -- not fail -- with ingest completing
    normally, and the offline catch-up verdict must be byte-identical to
    the healthy serve's.
    """
    from ..serve.daemon import ServeSession, session_checkers
    from ..serve.store import ObjectStoreStub

    checks: List[dict] = []
    ok = True
    make_checker, _ = session_checkers(program)
    for buggy in (False, True):
        run_kwargs = dict(
            buggy=buggy, num_threads=num_threads,
            calls_per_thread=calls_per_thread,
        )
        store = ObjectStoreStub()
        reference = _reference_serve(
            store, "ref", program, workload_seed, run_kwargs
        )
        crash_at = max(1, reference.records // 3)
        armed = {"live": True}

        def crashing_factory():
            checker = make_checker()
            if not armed["live"]:
                return checker
            armed["live"] = False
            return _CrashingChecker(checker, crash_at)

        daemon = ServeSession(
            store, "ref", 2, checker_factory=crashing_factory,
            timeout=30.0, checkpoint_every=max(1, crash_at // 2),
        )
        result = daemon.run()
        entry = {
            "buggy": buggy,
            "records": result.records,
            "crash_at": crash_at,
            "degraded": result.degraded,
            "degraded_reason": result.stats.get("degraded_reason"),
            "catchup_from_seq": result.stats.get("catchup_from_seq"),
            "catchup_records": result.stats.get("catchup_records"),
            "stream_ok": result.ok,
            "signature_identical": result.signature == reference.signature,
            "verdict_identical": (
                _serve_verdict(result) == _serve_verdict(reference)
            ),
        }
        entry["ok"] = (
            result.ok
            and result.degraded
            and (entry["catchup_records"] or 0) > 0
            and entry["signature_identical"]
            and entry["verdict_identical"]
        )
        ok = ok and entry["ok"]
        checks.append(entry)
    return checks, ok


def _linz_recovery_round(program: str, plan: FaultPlan, pristine_run) -> tuple:
    """Linearizability verdict stability under log recovery.

    The annotation-free verdict (:mod:`repro.linz`) on a salvaged log
    prefix must equal the verdict on the same pristine prefix: recovery
    truncation may turn complete operations into incomplete ones, but it
    must never fabricate or lose a linearizability violation relative to
    checking the undamaged records up to the same point.
    """
    from ..linz import LinzChecker, linz_config

    checks: List[dict] = []
    ok = True
    spec_factory = linz_config(program).linz_spec_factory
    workdir = tempfile.mkdtemp(prefix="vyrd-linz-")
    try:
        pristine_path = os.path.join(workdir, "pristine.vlog")
        save_log(pristine_run.log, pristine_path)
        pristine = list(load_log(pristine_path))
        for index, fault in enumerate(plan.log_faults):
            if fault.kind == SPLICE_LOG:
                continue  # undetectable on unchained framing (chain round)
            victim = os.path.join(workdir, f"victim-{index}.vlog")
            shutil.copyfile(pristine_path, victim)
            applied = apply_log_faults(
                victim, FaultPlan(seed=plan.seed, faults=(fault,))
            )
            recovered = recover_log(victim)
            salvaged = list(recovered.log)
            salvaged_verdict = LinzChecker(spec_factory).check(salvaged).to_dict()
            prefix_verdict = LinzChecker(spec_factory).check(
                pristine[: len(salvaged)]
            ).to_dict()
            entry = {
                "fault": applied[0] if applied else {"kind": fault.kind},
                "salvaged_records": len(salvaged),
                "operations": salvaged_verdict["operations"],
                "incomplete": salvaged_verdict["incomplete"],
                "ok_verdict": salvaged_verdict["ok"],
                "verdict_stable": (
                    json.dumps(salvaged_verdict, sort_keys=True)
                    == json.dumps(prefix_verdict, sort_keys=True)
                ),
            }
            entry["ok"] = entry["verdict_stable"]
            ok = ok and entry["ok"]
            checks.append(entry)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return checks, ok


def _latency_round(
    program: str,
    plan: FaultPlan,
    workload_seed: int,
    num_threads: int,
    calls_per_thread: int,
    pristine_run,
) -> Optional[bool]:
    """Re-run under LatencyTracer; the log must be action-identical."""
    if not plan.tracer_faults:
        return None
    slowed = run_program(
        program,
        num_threads=num_threads,
        calls_per_thread=calls_per_thread,
        seed=workload_seed,
        faults=plan,
    )
    before = [repr(action) for action in pristine_run.log]
    after = [repr(action) for action in slowed.log]
    return before == after


def run_fault_campaign(
    program: str = "multiset-vector",
    seed: int = 0,
    plan: Optional[FaultPlan] = None,
    jobs: int = 2,
    num_runs: int = 12,
    num_threads: int = 2,
    calls_per_thread: int = 3,
    workload_seed: int = 0,
    timeout: float = 5.0,
    max_retries: int = 2,
    backoff_base: float = 0.02,
    buggy: bool = False,
    slow_ios: int = 1,
    obs=None,
) -> FaultCampaignReport:
    """Run one complete fault campaign (see the module docstring).

    ``plan=None`` generates a default mix from ``seed``: one worker crash,
    one worker hang (longer than ``timeout``, so the watchdog -- not the
    sleep -- ends it), one torn log, one bit-flipped log and ``slow_ios``
    latency faults, targeted at the chunk serials the swarm will actually
    dispatch.  Pass an explicit plan to replay a specific failure.

    ``obs`` (a :class:`repro.obs.Recorder`) records one span per campaign
    phase plus counters for incidents survived and records recovered --
    campaign-level cost attribution; the per-run pipeline metrics stay in
    the worker processes and are not collected here.
    """
    from ..obs import NULL_RECORDER

    obs = obs if obs is not None else NULL_RECORDER
    if plan is None:
        plan = FaultPlan.generate(
            seed,
            tasks=_expected_chunks(num_runs, jobs),
            hang_seconds=max(timeout * 6, 30.0),
            slow_ios=slow_ios,
            producer_kills=1,
            flaky_stores=1,
            outages=1,
        )
    report = FaultCampaignReport(
        program=program, seed=seed, jobs=jobs, num_runs=num_runs,
        plan=plan.describe(),
    )
    spec = ProgramSpec(
        program,
        buggy=buggy,
        num_threads=num_threads,
        calls_per_thread=calls_per_thread,
        workload_seed=workload_seed,
    )
    start = time.monotonic()
    with obs.span("campaign.baseline", cat="faults"):
        baseline = parallel_swarm(spec, num_runs=num_runs, jobs=1)
    report.baseline_seconds = time.monotonic() - start
    start = time.monotonic()
    with obs.span("campaign.faulted", cat="faults"):
        faulted = parallel_swarm(
            spec,
            num_runs=num_runs,
            jobs=jobs,
            faults=plan,
            timeout=timeout,
            max_retries=max_retries,
            backoff_base=backoff_base,
        )
    report.faulted_seconds = time.monotonic() - start
    report.baseline_signature = _digest(baseline.signature())
    report.faulted_signature = _digest(faulted.signature())
    report.signatures_match = (
        report.baseline_signature == report.faulted_signature
    )
    report.num_failures = len(faulted.failures)
    report.interruptions = list(faulted.interruptions)
    with obs.span("campaign.corruption", cat="faults"):
        report.recoveries, report.recovery_ok, pristine_run = _corruption_round(
            program, plan, workload_seed, num_threads, calls_per_thread
        )
    with obs.span("campaign.chain", cat="faults"):
        report.chain_checks, report.chain_ok = _chain_round(plan, pristine_run)
    with obs.span("campaign.linz", cat="faults"):
        report.linz_checks, report.linz_ok = _linz_recovery_round(
            plan=plan, program=program, pristine_run=pristine_run
        )
    with obs.span("campaign.latency", cat="faults"):
        report.tracer_log_identical = _latency_round(
            program, plan, workload_seed, num_threads, calls_per_thread,
            pristine_run,
        )
    with obs.span("campaign.checkpoint", cat="faults"):
        report.checkpoint_checks, report.checkpoint_ok = _checkpoint_round(
            program, workload_seed, num_threads, calls_per_thread
        )
    with obs.span("campaign.producer_kill", cat="faults"):
        report.producer_kill_checks, report.producer_kill_ok = (
            _producer_kill_round(
                program, plan, workload_seed, num_threads, calls_per_thread
            )
        )
    with obs.span("campaign.brownout", cat="faults"):
        report.brownout_checks, report.brownout_ok = _store_brownout_round(
            program, plan, workload_seed, num_threads, calls_per_thread
        )
    with obs.span("campaign.catchup", cat="faults"):
        report.catchup_checks, report.catchup_ok = _catchup_round(
            program, workload_seed, num_threads, calls_per_thread
        )
    if obs.enabled:
        for kind, count in report.incident_counts.items():
            obs.count(f"pool.events.{kind}", count)
        obs.count(
            "recovery.salvaged_records",
            sum(entry["salvaged_records"] for entry in report.recoveries),
        )
        obs.count(
            "supervisor.restarts",
            sum(e["restarts"] for e in report.producer_kill_checks),
        )
        obs.count(
            "store.retries_absorbed",
            sum(e["retries_absorbed"] for e in report.brownout_checks),
        )
    return report
