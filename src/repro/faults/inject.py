"""Fault injectors: log corruption, tracer latency, store brownouts.

These are the *mechanisms* behind a :class:`~repro.faults.plan.FaultPlan`:
:func:`tear` and :func:`bitflip` damage a saved log file in place,
:func:`apply_log_faults` resolves a plan's fractional offsets against a real
file, :class:`LatencyTracer` wraps a kernel tracer to simulate a slow log
device, and :class:`FlakyStore` wraps a serve-layer blob store to simulate
a browning-out backend (transient errors, latency spikes, blackout
windows).  All of them are deterministic given the plan: the same plan
applied to the same bytes damages the same offsets, and the same plan over
the same op sequence fails the same calls.
"""

from __future__ import annotations

import os
import threading
import time
from typing import List, Optional

from ..concurrency.kernel import Tracer
from ..serve.store import LogStore
from .plan import (
    BITFLIP_LOG,
    FLAKY_STORE,
    SPLICE_LOG,
    STORE_OUTAGE,
    TORN_LOG,
    Fault,
    FaultPlan,
)


def tear(path: str, offset: int) -> int:
    """Truncate the file at ``offset`` (a torn write / lost tail).

    Returns the number of bytes discarded.  ``offset`` past the end is a
    no-op, matching a tear that happened to land after the last flush.
    """
    size = os.path.getsize(path)
    offset = max(0, min(offset, size))
    with open(path, "r+b") as handle:
        handle.truncate(offset)
    return size - offset


def bitflip(path: str, offset: int, bit: int = 0) -> int:
    """Flip one bit of the byte at ``offset`` in place.

    Returns the offset actually flipped (clamped into the file), modelling
    silent media corruption under an otherwise intact file.
    """
    size = os.path.getsize(path)
    if size == 0:
        return 0
    offset = max(0, min(offset, size - 1))
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([byte ^ (1 << (bit % 8))]))
    return offset


def _frame_spans(path: str):
    """Byte spans of every frame in a framed log, format auto-detected.

    Walks the length-prefixed frame headers only -- no CRC or chain checks,
    no unpickling -- because the injector must be able to splice files it is
    about to declare corrupt.  Returns ``(spans, data_start)`` where each
    span is ``(start, end)``; ``([], 0)`` for unframed/legacy files (no
    frame boundaries to splice at).
    """
    from ..core.log import (
        _CHAIN_HEADER,
        _DIGEST_SIZE,
        _FRAME_HEADER,
        _SHARD_PROLOGUE,
        LOG_MAGIC,
        LOG_MAGIC2,
    )

    with open(path, "rb") as handle:
        data = handle.read()
    if data.startswith(LOG_MAGIC2):
        start = len(LOG_MAGIC2) + _SHARD_PROLOGUE.size
        fixed = _CHAIN_HEADER.size + _DIGEST_SIZE
        header = _CHAIN_HEADER
        length_at = 1  # (seq, length, crc)
    elif data.startswith(LOG_MAGIC):
        start = len(LOG_MAGIC)
        fixed = _FRAME_HEADER.size
        header = _FRAME_HEADER
        length_at = 0  # (length, crc)
    else:
        return [], 0
    spans = []
    offset = start
    while offset + fixed <= len(data):
        fields = header.unpack_from(data, offset)
        end = offset + fixed + fields[length_at]
        if end > len(data):
            break
        spans.append((offset, end))
        offset = end
    return spans, start


def splice_records(path: str, offset: int) -> dict:
    """Swap the frame at ``offset`` with its successor, in place.

    A frame-aware record splice: both frames stay individually intact
    (lengths and CRCs verify), only their order changes -- the tampering a
    plain CRC-framed log cannot detect and the hash chain exists to catch.
    Returns the swapped record indices, or ``{"spliced": False}`` when the
    file has fewer than two whole frames (nothing to reorder).
    """
    spans, _start = _frame_spans(path)
    if len(spans) < 2:
        return {"spliced": False}
    index = 0
    for i, (lo, hi) in enumerate(spans):
        if lo <= offset < hi:
            index = i
            break
    else:
        index = len(spans) - 1
    if index == len(spans) - 1:
        index -= 1
    (a_lo, a_hi), (b_lo, b_hi) = spans[index], spans[index + 1]
    with open(path, "r+b") as handle:
        data = bytearray(handle.read())
        swapped = data[b_lo:b_hi] + data[a_lo:a_hi]
        data[a_lo:b_hi] = swapped
        handle.seek(0)
        handle.write(data)
    return {"spliced": True, "records": (index, index + 1),
            "offsets": (a_lo, b_hi)}


def resolve_offset(fault: Fault, size: int) -> int:
    """Turn a fault's fractional position into a concrete byte offset.

    Offsets are kept strictly inside the payload region (past any leading
    byte, before the final byte) whenever the file is big enough, so a
    planned corruption always damages *something* rather than degenerating
    to an empty tear at offset 0 or past-the-end.
    """
    if size <= 2:
        return 0
    return 1 + int(fault.frac * (size - 2))


def apply_log_faults(path: str, plan: FaultPlan) -> List[dict]:
    """Damage ``path`` according to the plan's log faults, in plan order.

    Returns one record per applied fault (kind, resolved offset, and the
    discarded byte count for tears) so callers can cross-check recovery
    reports against ground truth.
    """
    applied = []
    for fault in plan.log_faults:
        size = os.path.getsize(path)
        offset = resolve_offset(fault, size)
        if fault.kind == TORN_LOG:
            lost = tear(path, offset)
            applied.append({"kind": TORN_LOG, "offset": offset, "lost": lost})
        elif fault.kind == BITFLIP_LOG:
            flipped = bitflip(path, offset, fault.bit)
            applied.append({"kind": BITFLIP_LOG, "offset": flipped,
                            "bit": fault.bit % 8})
        elif fault.kind == SPLICE_LOG:
            spliced = splice_records(path, offset)
            spliced["kind"] = SPLICE_LOG
            spliced["offset"] = offset
            applied.append(spliced)
    return applied


class LatencyTracer(Tracer):
    """Delegating tracer that adds wall-clock latency on a fixed cadence.

    Simulates a slow log device: every ``every``-th traced event sleeps for
    ``seconds`` before delegating.  The kernel consults only its scheduler
    for interleaving decisions, so the injected latency stretches wall-clock
    time without perturbing the schedule -- runs under a ``LatencyTracer``
    produce bit-identical logs to unfaulted runs (asserted in the fault
    campaign).
    """

    def __init__(self, inner: Tracer, plan: FaultPlan):
        self.inner = inner
        self.events = 0
        self.stalls = 0
        faults = plan.tracer_faults
        fault: Optional[Fault] = faults[0] if faults else None
        self._every = max(1, fault.every) if fault else 0
        self._seconds = fault.seconds if fault else 0.0

    def _tick(self) -> None:
        self.events += 1
        if self._every and self.events % self._every == 0:
            self.stalls += 1
            time.sleep(self._seconds)

    def on_write(self, tid, cell, old, new):
        self._tick()
        self.inner.on_write(tid, cell, old, new)

    def on_read(self, tid, cell):
        self._tick()
        self.inner.on_read(tid, cell)

    def on_acquire(self, tid, lock, mode="x"):
        self._tick()
        self.inner.on_acquire(tid, lock, mode)

    def on_release(self, tid, lock, mode="x"):
        self._tick()
        self.inner.on_release(tid, lock, mode)

    def on_commit(self, tid):
        self._tick()
        self.inner.on_commit(tid)

    def on_begin_commit_block(self, tid):
        self._tick()
        self.inner.on_begin_commit_block(tid)

    def on_end_commit_block(self, tid):
        self._tick()
        self.inner.on_end_commit_block(tid)

    def on_replay(self, tid, tag, payload):
        self._tick()
        self.inner.on_replay(tid, tag, payload)

    def on_spawn(self, parent_tid, child_tid):
        self._tick()
        self.inner.on_spawn(parent_tid, child_tid)

    def on_join(self, tid, child_tid):
        self._tick()
        self.inner.on_join(tid, child_tid)


class FlakyStore(LogStore):
    """Plan-driven brownout wrapper around a serve-layer :class:`LogStore`.

    Simulates a misbehaving blob backend for the retry layer
    (:class:`repro.serve.retry.RetryingStore`) to absorb.  Three behaviours,
    all drawn deterministically from the plan seed and the op serial:

    * :data:`~repro.faults.plan.FLAKY_STORE` -- each op fails with
      probability ``frac`` (raising
      :class:`~repro.serve.retry.TransientStoreError`), and every
      ``every``-th op stalls ``seconds`` before completing (a latency
      spike).  Consecutive failures are capped at ``max_consecutive`` so a
      bounded retry budget is always sufficient -- the transient-fault
      model every other injector here follows.
    * :data:`~repro.faults.plan.STORE_OUTAGE` -- once op serial ``task`` is
      reached, *every* op fails for ``seconds`` of wall-clock time (a
      blackout window); retry backoff is what rides past it.

    Subclassing :class:`LogStore` means the convenience helpers
    (``get_json``, ``set_flag``, ...) route through the faulted primitives
    exactly as they do on a real store.
    """

    def __init__(self, inner, plan: FaultPlan, *, max_consecutive: int = 2):
        import random

        self.inner = inner
        self.plan = plan
        flaky = [f for f in plan.store_faults if f.kind == FLAKY_STORE]
        outages = [f for f in plan.store_faults if f.kind == STORE_OUTAGE]
        self._flaky: Optional[Fault] = flaky[0] if flaky else None
        self._outage: Optional[Fault] = outages[0] if outages else None
        self._rng = random.Random(f"{plan.seed}:flaky-store")
        self._lock = threading.Lock()
        self._max_consecutive = max(1, max_consecutive)
        self._consecutive = 0
        self._outage_started: Optional[float] = None
        self.ops = 0
        self.failures = 0
        self.stalls = 0

    def _maybe_fail(self, op: str, name: str) -> float:
        """Raise a planned transient error or return a stall duration."""
        from ..serve.retry import TransientStoreError

        with self._lock:
            self.ops += 1
            serial = self.ops
            if self._outage is not None:
                start_at = self._outage.task or 0
                if self._outage_started is None and serial >= start_at:
                    self._outage_started = time.monotonic()
                if (
                    self._outage_started is not None
                    and time.monotonic() - self._outage_started
                    < self._outage.seconds
                ):
                    self.failures += 1
                    raise TransientStoreError(
                        f"store blackout: {op}({name!r}) at op {serial}"
                    )
            stall = 0.0
            if self._flaky is not None:
                fault = self._flaky
                roll = self._rng.random()
                if (
                    roll < fault.frac
                    and self._consecutive < self._max_consecutive
                ):
                    self._consecutive += 1
                    self.failures += 1
                    raise TransientStoreError(
                        f"transient store error: {op}({name!r}) "
                        f"at op {serial}"
                    )
                self._consecutive = 0
                if fault.every and serial % fault.every == 0:
                    stall = fault.seconds
                    self.stalls += 1
            return stall

    def _op(self, op: str, name: str, fn, *args):
        stall = self._maybe_fail(op, name)
        if stall:
            time.sleep(stall)
        return fn(*args)

    # -- faulted LogStore primitives ----------------------------------------

    def open_append(self, name):
        return self._op("open_append", name, self.inner.open_append, name)

    def open_read(self, name):
        return self._op("open_read", name, self.inner.open_read, name)

    def read_range(self, name, start, end=None):
        return self._op(
            "read_range", name, self.inner.read_range, name, start, end
        )

    def size(self, name):
        return self._op("size", name, self.inner.size, name)

    def list(self, prefix=""):
        return self._op("list", prefix, self.inner.list, prefix)

    def put_bytes(self, name, data):
        return self._op("put_bytes", name, self.inner.put_bytes, name, data)

    def delete(self, name):
        return self._op("delete", name, self.inner.delete, name)

    def path(self, name):
        return self.inner.path(name)  # metadata only: never faulted
