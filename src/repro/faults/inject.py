"""Fault injectors: log-file corruption and tracer-seam latency.

These are the *mechanisms* behind a :class:`~repro.faults.plan.FaultPlan`:
:func:`tear` and :func:`bitflip` damage a saved log file in place,
:func:`apply_log_faults` resolves a plan's fractional offsets against a real
file, and :class:`LatencyTracer` wraps a kernel tracer to simulate a slow
log device.  All of them are deterministic given the plan: the same plan
applied to the same bytes damages the same offsets.
"""

from __future__ import annotations

import os
import time
from typing import List, Optional

from ..concurrency.kernel import Tracer
from .plan import BITFLIP_LOG, TORN_LOG, Fault, FaultPlan


def tear(path: str, offset: int) -> int:
    """Truncate the file at ``offset`` (a torn write / lost tail).

    Returns the number of bytes discarded.  ``offset`` past the end is a
    no-op, matching a tear that happened to land after the last flush.
    """
    size = os.path.getsize(path)
    offset = max(0, min(offset, size))
    with open(path, "r+b") as handle:
        handle.truncate(offset)
    return size - offset


def bitflip(path: str, offset: int, bit: int = 0) -> int:
    """Flip one bit of the byte at ``offset`` in place.

    Returns the offset actually flipped (clamped into the file), modelling
    silent media corruption under an otherwise intact file.
    """
    size = os.path.getsize(path)
    if size == 0:
        return 0
    offset = max(0, min(offset, size - 1))
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([byte ^ (1 << (bit % 8))]))
    return offset


def resolve_offset(fault: Fault, size: int) -> int:
    """Turn a fault's fractional position into a concrete byte offset.

    Offsets are kept strictly inside the payload region (past any leading
    byte, before the final byte) whenever the file is big enough, so a
    planned corruption always damages *something* rather than degenerating
    to an empty tear at offset 0 or past-the-end.
    """
    if size <= 2:
        return 0
    return 1 + int(fault.frac * (size - 2))


def apply_log_faults(path: str, plan: FaultPlan) -> List[dict]:
    """Damage ``path`` according to the plan's log faults, in plan order.

    Returns one record per applied fault (kind, resolved offset, and the
    discarded byte count for tears) so callers can cross-check recovery
    reports against ground truth.
    """
    applied = []
    for fault in plan.log_faults:
        size = os.path.getsize(path)
        offset = resolve_offset(fault, size)
        if fault.kind == TORN_LOG:
            lost = tear(path, offset)
            applied.append({"kind": TORN_LOG, "offset": offset, "lost": lost})
        elif fault.kind == BITFLIP_LOG:
            flipped = bitflip(path, offset, fault.bit)
            applied.append({"kind": BITFLIP_LOG, "offset": flipped,
                            "bit": fault.bit % 8})
    return applied


class LatencyTracer(Tracer):
    """Delegating tracer that adds wall-clock latency on a fixed cadence.

    Simulates a slow log device: every ``every``-th traced event sleeps for
    ``seconds`` before delegating.  The kernel consults only its scheduler
    for interleaving decisions, so the injected latency stretches wall-clock
    time without perturbing the schedule -- runs under a ``LatencyTracer``
    produce bit-identical logs to unfaulted runs (asserted in the fault
    campaign).
    """

    def __init__(self, inner: Tracer, plan: FaultPlan):
        self.inner = inner
        self.events = 0
        self.stalls = 0
        faults = plan.tracer_faults
        fault: Optional[Fault] = faults[0] if faults else None
        self._every = max(1, fault.every) if fault else 0
        self._seconds = fault.seconds if fault else 0.0

    def _tick(self) -> None:
        self.events += 1
        if self._every and self.events % self._every == 0:
            self.stalls += 1
            time.sleep(self._seconds)

    def on_write(self, tid, cell, old, new):
        self._tick()
        self.inner.on_write(tid, cell, old, new)

    def on_read(self, tid, cell):
        self._tick()
        self.inner.on_read(tid, cell)

    def on_acquire(self, tid, lock, mode="x"):
        self._tick()
        self.inner.on_acquire(tid, lock, mode)

    def on_release(self, tid, lock, mode="x"):
        self._tick()
        self.inner.on_release(tid, lock, mode)

    def on_commit(self, tid):
        self._tick()
        self.inner.on_commit(tid)

    def on_begin_commit_block(self, tid):
        self._tick()
        self.inner.on_begin_commit_block(tid)

    def on_end_commit_block(self, tid):
        self._tick()
        self.inner.on_end_commit_block(tid)

    def on_replay(self, tid, tag, payload):
        self._tick()
        self.inner.on_replay(tid, tag, payload)

    def on_spawn(self, parent_tid, child_tid):
        self._tick()
        self.inner.on_spawn(parent_tid, child_tid)

    def on_join(self, tid, child_tid):
        self._tick()
        self.inner.on_join(tid, child_tid)
