"""Command-line tooling: run, save, check and render VYRD logs.

See :mod:`repro.tools.cli` (``python -m repro.tools.cli --help``).  The
``main`` entry point is intentionally not re-exported here so that
``python -m repro.tools.cli`` does not import the module twice.
"""

__all__: list = []
