"""The ``vyrd`` command line: run workloads, check and inspect logs.

The paper's deployment story is two-phase: instrumented runs write a log
file; a verification pass replays it (section 4.2 -- "in practice, the log
is a file").  This CLI packages that workflow over the built-in benchmark
programs:

.. code-block:: console

   $ python -m repro.tools.cli programs
   $ python -m repro.tools.cli lint --json --fail-on error
   $ python -m repro.tools.cli analyze blinktree --matrix
   $ python -m repro.tools.cli run --program multiset-vector --buggy \\
         --seed 7 --races --save run.vyrdlog
   $ python -m repro.tools.cli explore --program multiset-vector --buggy \\
         --mode swarm --jobs 4 --seeds 500 --json
   $ python -m repro.tools.cli explore --program blinktree \\
         --mode exhaustive --reduce static --no-daemons --threads 3 \\
         --calls 1 --workload-seed 7 --max-runs 40000
   $ python -m repro.tools.cli check run.vyrdlog --program multiset-vector \\
         --mode view
   $ python -m repro.tools.cli check torn.vyrdlog --program multiset-vector \\
         --recover
   $ python -m repro.tools.cli faults --program multiset-vector --seed 7 \\
         --jobs 2 --json
   $ python -m repro.tools.cli profile blinktree --seed 3 \\
         --trace-out blinktree.trace.json
   $ python -m repro.tools.cli races run.vyrdlog --detector hb
   $ python -m repro.tools.cli trace run.vyrdlog --max-rows 40
   $ python -m repro.tools.cli witness run.vyrdlog
   $ python -m repro.tools.cli serve --program multiset-vector --sessions 2 \\
         --shards 2 --root /tmp/vyrd-serve --verify-direct --json
   $ python -m repro.tools.cli verify-chain /tmp/vyrd-serve/run-00000

``serve`` runs the streaming verification service (:mod:`repro.serve`):
producer processes write sharded, hash-chained logs into a store while a
daemon merges, checks and chain-audits them online (``--verify-direct``
additionally gates every session's canonical-order signature against a
single-process rerun); ``verify-chain`` walks the tamper-evident hash
chain of saved shard files -- or a whole session directory against its
manifest's recorded head digests -- and pinpoints the first bad byte;
``lint`` statically checks every registry implementation's
instrumentation annotations (:mod:`repro.lint`) before anything runs and
audits the ``# vyrd: ignore[...]`` suppression pragmas;
``analyze`` prints the static effect summaries and pairwise independence
matrix (:mod:`repro.lint.effects`) that ``explore --reduce static``
consumes; ``explore`` runs a whole campaign -- seeded random schedules
(swarm) or bounded exhaustive enumeration, optionally pruned by
sleep-set reduction over the static matrix (``--reduce static``) --
optionally fanned out across worker
processes (:mod:`repro.concurrency.parallel`); ``check`` rebuilds the
program's spec/view/invariants from the registry and
replays the saved log offline (``--recover`` salvages damaged logs first);
``faults`` runs a seeded fault-injection campaign
(:mod:`repro.faults`) and verifies recovery; ``races`` runs the dynamic race detectors
over any saved log recorded with synchronization events (``run --races``
records them); ``trace``/``witness`` render Fig. 3/6-style diagrams from
any saved log; ``profile`` runs one workload with the observability layer
(:mod:`repro.obs`) fully on and prints where checker time went --
``run``/``explore``/``faults`` accept ``--metrics``/``--trace-out`` for the
same instrumentation on their own workflows.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from contextlib import nullcontext
from typing import List, Optional

from ..concurrency.errors import SimThreadError, SimulationError
from ..core import (
    Checkpoint,
    CheckpointError,
    LogFormatError,
    RefinementChecker,
    format_outcome,
    load_log,
    recover_log,
    render_trace,
    render_witness,
    save_log,
    validate_well_formed,
)
from ..harness import PROGRAMS, explore_program, run_program


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared observability flags (``run``/``explore``/``faults``)."""
    parser.add_argument("--metrics", action="store_true",
                        help="record pipeline metrics (repro.obs) and report "
                             "them (tables, or under 'metrics' with --json)")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="write a Chrome trace-event JSON of the "
                             "recorded spans to PATH (implies --metrics)")


def _obs_recorder(args):
    """A ``MetricsRecorder`` when the command asked for one, else ``None``."""
    if not (args.metrics or args.trace_out):
        return None
    from ..obs import MetricsRecorder

    return MetricsRecorder()


def _finish_obs(args, recorder, payload=None, title="pipeline profile") -> None:
    """Shared tail of every observability-aware command: export and report.

    Writes the trace file when requested, then either attaches the full
    metrics dict to the JSON ``payload`` or prints the profiling tables.
    """
    if recorder is None:
        return
    if args.trace_out:
        from ..obs import write_trace

        write_trace(recorder, args.trace_out)
    if payload is not None:
        payload["metrics"] = recorder.to_dict()
        if args.trace_out:
            payload["trace"] = args.trace_out
        return
    if args.metrics:
        from ..obs import format_metrics

        print()
        print(format_metrics(recorder, title=title))
    if args.trace_out:
        print(f"trace written to {args.trace_out}")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vyrd",
        description="Runtime refinement-violation detection (VYRD, PLDI 2005).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("programs", help="list the built-in benchmark programs")

    lint_parser = sub.add_parser(
        "lint",
        help="statically check instrumentation annotations (commit "
             "placement, yield discipline, shared-write tracing) before "
             "anything runs",
    )
    lint_parser.add_argument("--program", action="append",
                             choices=sorted(PROGRAMS), metavar="NAME",
                             help="program(s) to lint (repeatable; default: "
                                  "every registry program)")
    lint_parser.add_argument("--rule", action="append", metavar="VY00x",
                             help="only report these rule ids (repeatable)")
    lint_parser.add_argument("--fail-on", choices=("warn", "error"),
                             default="warn",
                             help="lowest severity that makes the command "
                                  "exit 2 (default: warn)")
    lint_parser.add_argument("--json", action="store_true",
                             help="emit the findings as JSON")

    analyze_parser = sub.add_parser(
        "analyze",
        help="statically compute per-operation effect summaries and the "
             "pairwise independence matrix that drives --reduce static",
    )
    analyze_parser.add_argument("program", choices=sorted(PROGRAMS))
    analyze_parser.add_argument("--matrix", action="store_true",
                                help="also print the pairwise "
                                     "independence matrix")
    analyze_parser.add_argument("--json", action="store_true",
                                help="emit the full analysis (summaries, "
                                     "matrix, incomplete operations) as JSON")

    run_parser = sub.add_parser("run", help="run a workload and check it")
    run_parser.add_argument("--program", required=True, choices=sorted(PROGRAMS))
    run_parser.add_argument("--buggy", action="store_true",
                            help="enable the program's seeded bug")
    run_parser.add_argument("--threads", type=int, default=4)
    run_parser.add_argument("--calls", type=int, default=40,
                            help="method calls per thread")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--mode", choices=("io", "view"), default="view")
    run_parser.add_argument("--online", action="store_true",
                            help="verify with the online verification thread")
    run_parser.add_argument("--atomicity", action="store_true",
                            help="also run the Atomizer-style atomicity "
                                 "baseline (logs lock/read events)")
    run_parser.add_argument("--races", nargs="?", const="both",
                            choices=("hb", "lockset", "both"),
                            help="also run dynamic race detection (logs "
                                 "sync/read events); optional value selects "
                                 "the detector (default: both)")
    run_parser.add_argument("--save", metavar="PATH",
                            help="write the log to PATH for later checking")
    run_parser.add_argument("--lint", nargs="?", const="error",
                            choices=("warn", "error"),
                            help="statically lint the implementation's "
                                 "instrumentation before running; findings "
                                 "at or above this severity abort the run "
                                 "(default threshold: error)")
    run_parser.add_argument("--max-steps", type=int, default=20_000_000,
                            help="kernel step budget (exceeding it is "
                                 "reported as a run problem, exit code 2)")
    _add_obs_arguments(run_parser)
    run_parser.add_argument("--json", action="store_true",
                            help="emit the run summary as JSON")

    explore_parser = sub.add_parser(
        "explore",
        help="run an exploration campaign (many schedules, optionally "
             "across worker processes)",
    )
    explore_parser.add_argument("--program", required=True, choices=sorted(PROGRAMS))
    explore_parser.add_argument("--mode", choices=("swarm", "exhaustive"),
                                default="swarm",
                                help="seeded random schedules (swarm) or "
                                     "bounded exhaustive enumeration")
    explore_parser.add_argument("--jobs", type=int, default=1,
                                help="worker processes (0 = all CPUs, "
                                     "1 = serial in-process)")
    explore_parser.add_argument("--seeds", type=int, default=100,
                                help="swarm: number of seeded runs")
    explore_parser.add_argument("--base-seed", type=int, default=0,
                                help="swarm: first scheduler seed")
    explore_parser.add_argument("--max-runs", type=int, default=1000,
                                help="exhaustive: schedule budget")
    explore_parser.add_argument("--buggy", action="store_true",
                                help="enable the program's seeded bug")
    explore_parser.add_argument("--threads", type=int, default=2)
    explore_parser.add_argument("--calls", type=int, default=4,
                                help="method calls per thread")
    explore_parser.add_argument("--workload-seed", type=int, default=0,
                                help="fixes the operation mix; only the "
                                     "schedule varies across runs")
    explore_parser.add_argument("--stop-on-failure", action="store_true",
                                help="end the campaign at the first failing "
                                     "schedule (skipped runs are reported)")
    explore_parser.add_argument("--reduce", choices=("static",),
                                help="exhaustive: prune schedules that only "
                                     "permute statically independent "
                                     "operations (sleep sets over the "
                                     "`vyrd analyze` matrix); pruned "
                                     "schedules are counted as skipped")
    explore_parser.add_argument("--no-daemons", action="store_true",
                                help="do not spawn the program's background "
                                     "daemons (always-runnable daemons make "
                                     "the exhaustive schedule tree infinite)")
    explore_parser.add_argument("--fingerprint", action="store_true",
                                help="report each run's outcome as a "
                                     "canonical happens-before fingerprint "
                                     "of its log (records lock/read events)")
    _add_obs_arguments(explore_parser)
    explore_parser.add_argument("--json", action="store_true",
                                help="emit the campaign summary as JSON")

    check_parser = sub.add_parser("check", help="check a saved log offline")
    check_parser.add_argument("log", help="log file written by `run --save`")
    check_parser.add_argument("--program", required=True, choices=sorted(PROGRAMS))
    check_parser.add_argument(
        "--mode", choices=("io", "view", "refinement", "linz", "both"),
        default="view",
        help="io/view: commit-annotated refinement ('refinement' is an "
             "alias for view); linz: annotation-free linearization search "
             "(violations exit 2); both: run I/O refinement and the "
             "linearization search and require the verdicts to agree -- "
             "a disagreement outside the documented expected-divergence "
             "list exits 2 with both verdicts in --json")
    check_parser.add_argument(
        "--variant", default="default",
        help="linz/both: the program's linearizability variant (e.g. "
             "'strict-lookup' for multiset-vector's documented "
             "expected divergence)")
    check_parser.add_argument("--all", action="store_true",
                              help="collect all violations, not just the first")
    check_parser.add_argument("--recover", action="store_true",
                              help="salvage the longest valid prefix of a "
                                   "truncated/corrupt log and check that; "
                                   "without this flag a damaged log is a "
                                   "hard error (exit code 2)")
    check_parser.add_argument("--checkpoint-every", type=int, metavar="N",
                              default=0,
                              help="write a rolling checkpoint after every N "
                                   "processed records (requires --checkpoint)")
    check_parser.add_argument("--checkpoint", metavar="PATH",
                              help="checkpoint file to write (with "
                                   "--checkpoint-every) or to update on "
                                   "completion")
    check_parser.add_argument("--resume", metavar="CKPT",
                              help="resume mid-log from a checkpoint written "
                                   "by a previous check of the same log; a "
                                   "corrupt checkpoint is rejected and the "
                                   "check falls back to record zero")
    check_parser.add_argument("--json", action="store_true",
                              help="emit the outcome as JSON")

    linz_parser = sub.add_parser(
        "linz",
        help="annotation-free linearizability check: search a saved log's "
             "call/return history (or run a registry workload and search "
             "its log) for a valid linearization against the atomic spec; "
             "needs no commit annotations, so it works on any log level",
    )
    linz_parser.add_argument(
        "target",
        help="a registry program name (runs the workload, then checks), or "
             "a log file written by `run --save` (requires --program)")
    linz_parser.add_argument("--program", choices=sorted(PROGRAMS),
                             help="registry program supplying the spec when "
                                  "TARGET is a log file")
    linz_parser.add_argument("--variant", default="default",
                             help="linearizability spec variant "
                                  "(see `check --variant`)")
    linz_parser.add_argument("--buggy", action="store_true",
                             help="program target: enable the seeded bug")
    linz_parser.add_argument("--threads", type=int, default=4,
                             help="program target: worker threads")
    linz_parser.add_argument("--calls", type=int, default=20,
                             help="program target: method calls per thread")
    linz_parser.add_argument("--seed", type=int, default=0,
                             help="program target: scheduler seed")
    linz_parser.add_argument("--no-memo", action="store_true",
                             help="disable failed-state memoization "
                                  "(the benchmark ablation; can be "
                                  "exponentially slower)")
    linz_parser.add_argument("--max-nodes", type=int, default=2_000_000,
                             help="search-node budget; exceeding it is a "
                                  "hard error (exit 2), not a verdict")
    linz_parser.add_argument("--recover", action="store_true",
                             help="log target: salvage the longest valid "
                                  "prefix of a damaged log first")
    linz_parser.add_argument("--json", action="store_true",
                             help="emit the verdict as JSON")

    faults_parser = sub.add_parser(
        "faults",
        help="run a deterministic fault-injection campaign and verify "
             "recovery (crashes/hangs survive with serial-identical "
             "results; corrupt logs salvage exactly)",
    )
    faults_parser.add_argument("--program", default="multiset-vector",
                               choices=sorted(PROGRAMS))
    faults_parser.add_argument("--seed", type=int, default=0,
                               help="fault-plan generation seed")
    faults_parser.add_argument("--plan", metavar="PATH",
                               help="JSON fault plan (as emitted under "
                                    "'plan' in --json output) to replay "
                                    "instead of generating one from --seed")
    faults_parser.add_argument("--jobs", type=int, default=2,
                               help="worker processes for the faulted run")
    faults_parser.add_argument("--seeds", type=int, default=12,
                               help="schedules explored per campaign")
    faults_parser.add_argument("--threads", type=int, default=2)
    faults_parser.add_argument("--calls", type=int, default=3,
                               help="method calls per thread")
    faults_parser.add_argument("--timeout", type=float, default=5.0,
                               help="per-task watchdog deadline (seconds)")
    faults_parser.add_argument("--retries", type=int, default=2,
                               help="retry budget per task")
    _add_obs_arguments(faults_parser)
    faults_parser.add_argument("--json", action="store_true",
                               help="emit the campaign report as JSON")

    profile_parser = sub.add_parser(
        "profile",
        help="run one workload with full observability and report where "
             "pipeline time went (phase wall-clock, action counts, "
             "histograms); --trace-out exports a Perfetto-loadable trace",
    )
    profile_parser.add_argument("program", choices=sorted(PROGRAMS))
    profile_parser.add_argument("--buggy", action="store_true",
                                help="enable the program's seeded bug")
    profile_parser.add_argument("--threads", type=int, default=4)
    profile_parser.add_argument("--calls", type=int, default=40,
                                help="method calls per thread")
    profile_parser.add_argument("--seed", type=int, default=0)
    profile_parser.add_argument("--mode", choices=("io", "view"),
                                default="view")
    profile_parser.add_argument("--online", action="store_true",
                                help="profile the online verification thread "
                                     "instead of the offline check")
    profile_parser.add_argument("--trace-out", metavar="PATH",
                                help="write the Chrome trace-event JSON "
                                     "(chrome://tracing / Perfetto) to PATH")
    profile_parser.add_argument("--json", action="store_true",
                                help="emit the metrics as JSON")

    races_parser = sub.add_parser(
        "races", help="run dynamic race detection on a saved log"
    )
    races_parser.add_argument("log", help="log file written by `run --races --save`")
    races_parser.add_argument("--detector", choices=("hb", "lockset", "both"),
                              default="both")
    races_parser.add_argument("--atomic-prefix", action="append", default=[],
                              metavar="PREFIX",
                              help="treat locations starting with PREFIX as "
                                   "atomic (volatile/cache-mediated); e.g. "
                                   "'blt.' for blinktree logs (repeatable)")
    races_parser.add_argument("--context", type=int, default=4,
                              help="rows of context in the race excerpt")
    races_parser.add_argument("--json", action="store_true",
                              help="emit the outcome as JSON")

    trace_parser = sub.add_parser("trace", help="render a log as thread lanes")
    trace_parser.add_argument("log")
    trace_parser.add_argument("--writes", action="store_true",
                              help="include shared-variable writes")
    trace_parser.add_argument("--max-rows", type=int, default=None)

    witness_parser = sub.add_parser(
        "witness", help="show the commit-order witness interleaving"
    )
    witness_parser.add_argument("log")

    serve_parser = sub.add_parser(
        "serve",
        help="run the streaming verification service: forked producers "
             "write sharded hash-chained logs, the daemon merges them "
             "deterministically, checks online and audits the chains",
    )
    serve_parser.add_argument("--program", required=True,
                              choices=sorted(PROGRAMS))
    serve_parser.add_argument("--sessions", type=int, default=1,
                              help="producer sessions to serve (each gets "
                                   "seed base-seed + i)")
    serve_parser.add_argument("--base-seed", type=int, default=0)
    serve_parser.add_argument("--shards", type=int, default=2,
                              help="shard files per session")
    serve_parser.add_argument("--jobs", type=int, default=2,
                              help="sessions verified concurrently")
    serve_parser.add_argument("--buggy", action="store_true",
                              help="enable the program's seeded bug")
    serve_parser.add_argument("--threads", type=int, default=3)
    serve_parser.add_argument("--calls", type=int, default=10,
                              help="method calls per thread")
    serve_parser.add_argument("--mode", choices=("io", "view"),
                              default="view")
    serve_parser.add_argument("--races", nargs="?", const="both",
                              choices=("hb", "lockset", "both"),
                              help="also run daemon-side race detection "
                                   "(producers log sync/read events)")
    serve_parser.add_argument("--root", metavar="DIR",
                              help="store directory for shard files "
                                   "(default: a fresh temp directory)")
    serve_parser.add_argument("--sync", action="store_true",
                              help="fsync every acknowledged batch "
                                   "(crash-durable shards)")
    serve_parser.add_argument("--batch-records", type=int, default=64,
                              help="producer flush granularity")
    serve_parser.add_argument("--queue-records", type=int, default=4096,
                              help="daemon queue bound; producers are "
                                   "backpressured when checkers lag")
    serve_parser.add_argument("--checker-delay", type=float, default=0.0,
                              help="artificial per-batch checker stall "
                                   "(seconds) to exercise backpressure")
    serve_parser.add_argument("--supervise", action="store_true",
                              help="run each producer under the salvage-"
                                   "and-restart supervisor")
    serve_parser.add_argument("--max-restarts", type=int, default=2,
                              help="restart budget per supervised producer")
    serve_parser.add_argument("--kill-producer-after", type=int,
                              default=None, metavar="N",
                              help="fault hook: first producer attempt dies "
                                   "after N records (needs --supervise to "
                                   "recover)")
    serve_parser.add_argument("--store-retries", type=int, default=0,
                              help="wrap daemon store access in a retrying "
                                   "store with this retry budget")
    serve_parser.add_argument("--degrade-lag", type=int, default=None,
                              metavar="RECORDS",
                              help="degrade to record-only mode (catch-up "
                                   "verification at drain) when the checker "
                                   "queue holds this many records")
    serve_parser.add_argument("--timeout", type=float, default=120.0,
                              help="per-session ingest deadline (seconds)")
    serve_parser.add_argument("--verify-direct", action="store_true",
                              help="gate every session's canonical-order "
                                   "signature against a single-process "
                                   "rerun of the same seed (exit 1 on any "
                                   "mismatch)")
    _add_obs_arguments(serve_parser)
    serve_parser.add_argument("--json", action="store_true",
                              help="emit the campaign report as JSON")

    chain_parser = sub.add_parser(
        "verify-chain",
        help="verify the tamper-evident hash chain of saved shard logs; "
             "a session directory is audited against its MANIFEST.json "
             "head digests",
    )
    chain_parser.add_argument("paths", nargs="+", metavar="PATH",
                              help="chained log file(s), or session "
                                   "directories containing MANIFEST.json")
    chain_parser.add_argument("--expected-head", metavar="HEXDIGEST",
                              help="require this chain head (single file "
                                   "only; catches clean tail truncation)")
    chain_parser.add_argument("--require-chained", action="store_true",
                              help="treat unchained (VYRDLOG1/legacy) "
                                   "files as a failure instead of 'no "
                                   "integrity claim'")
    chain_parser.add_argument("--json", action="store_true",
                              help="emit the reports as JSON")

    return parser


def _cmd_programs(args) -> int:
    width = max(len(name) for name in PROGRAMS)
    for name in sorted(PROGRAMS):
        print(f"{name.ljust(width)}  seeded bug: {PROGRAMS[name].bug}")
    return 0


def _cmd_analyze(args) -> int:
    from ..lint.effects import analyze_program

    effects = analyze_program(args.program)
    if args.json:
        print(json.dumps(effects.to_dict(), indent=2))
        return 0
    print(f"{args.program}: class {effects.class_name} ({effects.file})")
    incomplete = effects.incomplete_operations()
    for op in effects.operations:
        summary = effects.summaries[op]
        print(f"  {op} ({summary.role})"
              + ("  [INCOMPLETE]" if op in incomplete else ""))
        footprint = [
            ("reads", sorted(".".join(p) for p in summary.reads)),
            ("writes", sorted(".".join(p) for p in summary.writes)),
            ("hidden writes",
             sorted(".".join(p) for p in summary.hidden_writes)),
            ("locks", summary.to_dict()["locks"]),
            ("commits", sorted(summary.commit_kinds)),
        ]
        for label, items in footprint:
            if items:
                print(f"    {label}: {', '.join(items)}")
        for line, reason in summary.reasons:
            print(f"    incomplete at line {line}: {reason}")
    if args.matrix:
        print("  independence matrix:")
        width = max((len(a) + len(b) for a, b in effects.matrix), default=0)
        for (a, b), verdict in sorted(effects.matrix.items()):
            pair = f"{a} x {b}".ljust(width + 3)
            print(f"    {pair}  {verdict.verdict}  ({verdict.reason})")
    return 0


def _cmd_lint(args) -> int:
    from ..lint import (
        ALL_RULE_IDS,
        audit_suppressions,
        lint_program,
        severity_at_least,
    )

    names = args.program if args.program else sorted(PROGRAMS)
    rules = None
    if args.rule:
        rules = {rule.strip().upper() for rule in args.rule}
        unknown = rules - set(ALL_RULE_IDS)
        if unknown:
            print(
                f"unknown rule id(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(ALL_RULE_IDS)})",
                file=sys.stderr,
            )
            return 2
    reports = {name: lint_program(name) for name in names}
    if rules is not None:
        reports = {
            name: [f for f in findings if f.rule_id in rules]
            for name, findings in reports.items()
        }
    gating = [
        finding
        for findings in reports.values()
        for finding in findings
        if severity_at_least(finding.severity, args.fail_on)
    ]
    total = sum(len(findings) for findings in reports.values())
    # Audit the `# vyrd: ignore[...]` pragmas alongside the findings: a
    # suppression hides a diagnostic forever, so the report should say
    # where each one lives and whether it carries a justification.
    suppressions = {name: audit_suppressions(name) for name in names}
    suppressed = sum(len(entries) for entries in suppressions.values())
    unjustified = sum(
        1
        for entries in suppressions.values()
        for entry in entries
        if not entry["has_reason"]
    )
    if args.json:
        print(json.dumps({
            "ok": not gating,
            "fail_on": args.fail_on,
            "programs": {
                name: [f.to_dict() for f in findings]
                for name, findings in reports.items()
            },
            "findings": total,
            "gating_findings": len(gating),
            "suppressions": {
                "total": suppressed,
                "without_reason": unjustified,
                "programs": suppressions,
            },
        }, indent=2))
        return 2 if gating else 0
    for name in names:
        findings = reports[name]
        if not findings:
            print(f"{name}: clean")
            continue
        print(f"{name}: {len(findings)} finding(s)")
        for finding in findings:
            print(f"  {finding.render()}")
    if suppressed:
        print(
            f"suppressions: {suppressed} pragma(s) across "
            f"{sum(1 for e in suppressions.values() if e)} program(s), "
            f"{unjustified} without a reason"
        )
        for name, entries in sorted(suppressions.items()):
            for entry in entries:
                rules = ",".join(entry["rules"])
                reason = "" if entry["has_reason"] else "  (no reason)"
                print(f"  {name}: {entry['file']}:{entry['line']} "
                      f"ignore[{rules}]{reason}")
    if gating:
        print(
            f"lint failed: {len(gating)} finding(s) at or above "
            f"'{args.fail_on}'",
            file=sys.stderr,
        )
        return 2
    return 0


def _cmd_run(args) -> int:
    recorder = _obs_recorder(args)
    try:
        result = run_program(
            args.program,
            buggy=args.buggy,
            num_threads=args.threads,
            calls_per_thread=args.calls,
            seed=args.seed,
            mode=args.mode,
            online=args.online,
            max_steps=args.max_steps,
            log_locks=args.atomicity,
            log_reads=args.atomicity,
            races=args.races,
            lint=args.lint,
            obs=recorder,
        )
    except SimulationError as exc:
        # The workload itself misbehaved (deadlock, runaway schedule, thread
        # crash, instrumentation misuse): report the problem as data, not a
        # stack trace.  Exit code 2 separates "the run could not complete"
        # from "the run completed and verification failed" (1).
        from ..core.instrument import InstrumentationError

        # A mid-operation InstrumentationError surfaces wrapped in the
        # SimThreadError of the thread it killed; unwrap so the report names
        # the offending method/thread/operation rather than the thread crash.
        cause = exc
        if isinstance(exc, SimThreadError) and isinstance(
            exc.__cause__, InstrumentationError
        ):
            cause = exc.__cause__
        problem = f"{type(cause).__name__}: {cause}"
        if args.json:
            payload = {
                "ok": False,
                "program": args.program,
                "seed": args.seed,
                "problem": problem,
                "error_type": type(cause).__name__,
            }
            if isinstance(cause, InstrumentationError):
                payload["method"] = cause.method
                payload["tid"] = cause.tid
                payload["op_id"] = cause.op_id
            findings = getattr(cause, "findings", None)
            if findings is not None:
                payload["lint_findings"] = [f.to_dict() for f in findings]
            print(json.dumps(payload, indent=2))
        else:
            print(f"run failed: {problem}", file=sys.stderr)
        return 2
    outcome = (
        result.online_outcome if args.online else result.vyrd.check_offline()
    )
    variant = "buggy" if args.buggy else "correct"
    races_ok = True
    if args.races:
        races_ok = result.race_outcome.ok
    if args.json:
        payload = {
            "ok": bool(outcome.ok and races_ok),
            "program": args.program,
            "variant": variant,
            "seed": args.seed,
            "threads": args.threads,
            "calls": args.calls,
            "mode": args.mode,
            "records": len(result.log),
            "refinement": outcome.to_dict(),
        }
        if args.races:
            payload["races"] = result.race_outcome.to_dict()
        if args.save:
            save_log(result.log, args.save)
            payload["saved"] = args.save
        _finish_obs(args, recorder, payload)
        _emit_json(payload, result.log)
        return 0 if payload["ok"] else 1
    print(
        f"ran {args.program} ({variant}), {args.threads} threads x "
        f"{args.calls} calls, seed {args.seed}: {len(result.log)} log records"
    )
    print(format_outcome(outcome, title=f"{args.mode} refinement"))
    if args.atomicity:
        from ..atomicity import check_atomicity

        atomicity = check_atomicity(result.log)
        print(f"atomicity baseline: {atomicity.summary()}")
    if args.races:
        from ..races import format_race_outcome, render_first_race

        races = result.race_outcome
        print(format_race_outcome(races, title=f"race detection ({args.races})"))
        excerpt = render_first_race(result.log, races)
        if excerpt is not None:
            print(excerpt)
    if args.save:
        save_log(result.log, args.save)
        print(f"log written to {args.save}")
    _finish_obs(args, recorder, title=f"{args.program} run profile")
    return 0 if outcome.ok and races_ok else 1


def _cmd_explore(args) -> int:
    recorder = _obs_recorder(args)
    start = time.perf_counter()
    # The campaign's per-run metrics are deterministic counter snapshots
    # merged across workers (ExplorationResult.metrics); the coordinator
    # recorder contributes one campaign-level span for the trace and then
    # folds the merged counters in so the report covers both.
    with (recorder.span("explore.campaign", cat="explore", mode=args.mode,
                        jobs=args.jobs)
          if recorder is not None else nullcontext()):
        result = explore_program(
            args.program,
            mode=args.mode,
            jobs=args.jobs,
            num_runs=args.seeds,
            base_seed=args.base_seed,
            max_runs=args.max_runs,
            stop_on_failure=args.stop_on_failure,
            buggy=args.buggy,
            num_threads=args.threads,
            calls_per_thread=args.calls,
            workload_seed=args.workload_seed,
            metrics=recorder is not None,
            reduce=args.reduce,
            daemons=not args.no_daemons,
            fingerprint=args.fingerprint,
        )
    elapsed = time.perf_counter() - start
    if recorder is not None:
        recorder.merge_counts(result.metrics)
    payload = result.to_dict()
    payload.update({
        "program": args.program,
        "mode": args.mode,
        "reduce": args.reduce,
        "jobs": args.jobs,
        "seconds": round(elapsed, 3),
        "runs_per_sec": (
            round(result.num_runs / elapsed, 2) if elapsed > 0 else None
        ),
    })
    if args.json:
        _finish_obs(args, recorder, payload)
        print(json.dumps(payload, indent=2))
    else:
        variant = "buggy" if args.buggy else "correct"
        coverage = ""
        if args.mode == "exhaustive":
            coverage = (
                " (schedule space exhausted)" if result.exhausted
                else " (budget reached)"
            )
        print(
            f"explored {args.program} ({variant}, {args.mode}, jobs={args.jobs}): "
            f"{result.num_runs} runs in {elapsed:.2f}s "
            f"[{payload['runs_per_sec']} runs/s]{coverage}"
        )
        if result.pruned:
            # pruned counts cut *branches*; each one roots a whole
            # unexplored subtree, so the true reduction factor (measured
            # by benchmarks/bench_schedule_reduction.py) is much larger.
            print(
                f"static reduction cut {result.pruned} schedule branch(es) "
                f"({result.num_runs} of {result.requested} discovered "
                f"schedules run)"
            )
        elif result.skipped:
            print(
                f"campaign stopped early: {result.skipped} of "
                f"{result.requested} requested runs skipped"
            )
        print(f"distinct outcomes: {len(result.outcomes())}")
        failures = result.failures
        if failures:
            first = failures[0]
            print(f"{len(failures)} failing schedule(s); first: "
                  f"schedule={first.schedule!r}: {first.error}")
        else:
            print("no failing schedules")
        _finish_obs(args, recorder, title=f"{args.program} campaign profile")
    return 0 if not result.failures else 1


def _checker_for(program_name: str, mode: str, stop_at_first: bool) -> RefinementChecker:
    built = PROGRAMS[program_name].build(False, 1)
    return RefinementChecker(
        built.spec_factory(),
        mode=mode,
        impl_view=built.view_factory() if mode == "view" else None,
        invariants=built.invariants if mode == "view" else (),
        replay_registry=built.replay_registry,
        stop_at_first=stop_at_first,
    )


def _emit_json(payload, log) -> None:
    """Shared ``--json`` plumbing: attach well-formedness and print.

    The payload always carries ``well_formed`` plus the individual problem
    strings, so scripts never have to re-run validation."""
    problems = validate_well_formed(log)
    payload["well_formed"] = not problems
    payload["well_formedness_problems"] = problems
    print(json.dumps(payload, indent=2))


def _cmd_check(args) -> int:
    recovery = None
    if args.recover:
        recovered = recover_log(args.log)
        log = recovered.log
        recovery = recovered.to_dict()
        if not recovered.complete and not args.json:
            print(
                f"warning: log damaged at byte {recovered.error_offset} "
                f"({recovered.cause}); checking the salvaged prefix of "
                f"{recovered.records} record(s)"
            )
    else:
        try:
            log = load_log(args.log)
        except LogFormatError as exc:
            if args.json:
                print(json.dumps({
                    "ok": False,
                    "problem": str(exc),
                    "error_type": "LogFormatError",
                    "offset": exc.offset,
                    "record_index": exc.record_index,
                }, indent=2))
            else:
                print(f"cannot read log: {exc}", file=sys.stderr)
                print("hint: re-run with --recover to check the salvageable "
                      "prefix", file=sys.stderr)
            return 2
    problems = validate_well_formed(log)
    if problems and not args.json:
        print(f"warning: log is not well-formed ({len(problems)} problem(s)):")
        for problem in problems[:5]:
            print(f"  {problem}")
    mode = "view" if args.mode == "refinement" else args.mode
    if mode == "linz":
        return _check_linz_log(args, log, recovery)
    if mode == "both":
        return _check_both(args, log, recovery)
    checker = _checker_for(args.program, mode, stop_at_first=not args.all)
    resume_info = None
    start_seq = 0
    if args.resume:
        try:
            ckpt = Checkpoint.load(args.resume)
            checker.restore(ckpt)
            start_seq = ckpt.resume_seq
            resume_info = {"checkpoint": args.resume, "resume_seq": start_seq}
        except CheckpointError as exc:
            # Typed rejection: fall back to a record-zero replay.
            resume_info = {
                "checkpoint": args.resume,
                "rejected": str(exc),
                "resume_seq": 0,
            }
            if not args.json:
                print(f"warning: checkpoint rejected ({exc}); "
                      "replaying from record zero", file=sys.stderr)
            checker = _checker_for(args.program, mode,
                                   stop_at_first=not args.all)
    actions = list(log)[start_seq:]
    every = max(0, args.checkpoint_every)
    if every and args.checkpoint:
        meta = {"program": args.program, "mode": mode, "log": args.log}
        for index in range(0, len(actions), every):
            checker.feed(actions[index:index + every])
            checker.checkpoint(meta=meta).save(args.checkpoint)
    else:
        checker.feed(actions)
        if args.checkpoint:
            checker.checkpoint(
                meta={"program": args.program, "mode": mode, "log": args.log}
            ).save(args.checkpoint)
    outcome = checker.finish()
    if args.json:
        payload = outcome.to_dict()
        if recovery is not None:
            payload["recovery"] = recovery
        if resume_info is not None:
            payload["resume"] = resume_info
        _emit_json(payload, log)
    else:
        if resume_info is not None and "rejected" not in resume_info:
            print(f"resumed from {args.resume} at seq {start_seq}")
        print(format_outcome(outcome, title=f"{mode} refinement of {args.log}"))
    return 0 if outcome.ok else 1


def _run_linz_search(args, log, spec_factory):
    """Run the linearization search with the shared budget/memoization
    flags; a blown budget is a hard error (exit 2), never a verdict."""
    from ..linz import LinzChecker, SearchBudgetExceeded

    checker = LinzChecker(
        spec_factory,
        memo=not getattr(args, "no_memo", False),
        max_nodes=getattr(args, "max_nodes", 2_000_000),
    )
    try:
        return checker.check(log), None
    except SearchBudgetExceeded as exc:
        return None, str(exc)


def _search_error(args, message: str) -> int:
    if args.json:
        print(json.dumps({
            "ok": False,
            "problem": message,
            "error_type": "SearchBudgetExceeded",
        }, indent=2))
    else:
        print(f"linearization search failed: {message}", file=sys.stderr)
    return 2


def _check_linz_log(args, log, recovery) -> int:
    """``check --mode linz``: the annotation-free verdict on one log."""
    from ..linz import linz_config

    config = linz_config(args.program, args.variant)
    outcome, error = _run_linz_search(args, log, config.linz_spec_factory)
    if outcome is None:
        return _search_error(args, error)
    if args.json:
        payload = outcome.to_dict()
        payload["program"] = args.program
        payload["variant"] = args.variant
        if recovery is not None:
            payload["recovery"] = recovery
        _emit_json(payload, log)
    else:
        print(f"linearizability of {args.log}: {outcome.summary()}")
        if not outcome.ok:
            print(f"  problem: {outcome.first_violation}")
    return 0 if outcome.ok else 2


def _check_both(args, log, recovery) -> int:
    """``check --mode both``: I/O refinement and the linearization search
    on the same log, gated on verdict agreement.

    The refinement side runs in I/O mode -- like the linearization search
    it needs only call/return/commit records, so the comparison works at
    every log level.  Exit 0 when the verdicts agree on OK or the
    disagreement is on the documented expected-divergence list; exit 2 for
    any linearizability violation or undocumented disagreement, with both
    verdicts in the ``--json`` payload.
    """
    from ..linz import expected_divergence, linz_config

    config = linz_config(args.program, args.variant)
    built = PROGRAMS[args.program].build(False, 1)
    ref_spec_factory = config.refinement_spec_factory or built.spec_factory
    ref_checker = RefinementChecker(
        ref_spec_factory(),
        mode="io",
        replay_registry=built.replay_registry,
        stop_at_first=not args.all,
    )
    ref_checker.feed(log)
    ref_outcome = ref_checker.finish()
    linz_outcome, error = _run_linz_search(args, log, config.linz_spec_factory)
    if linz_outcome is None:
        return _search_error(args, error)
    agree = ref_outcome.ok == linz_outcome.ok
    divergence = expected_divergence(args.program, args.variant)
    # The documented divergences are strictly refinement-OK /
    # linearizability-VIOLATION (a permissive refinement spec accepting a
    # genuinely non-linearizable execution); any other shape is a finding.
    expected = (
        divergence is not None and ref_outcome.ok and not linz_outcome.ok
    )
    problem = None
    if not agree and not expected:
        ref_verdict = "OK" if ref_outcome.ok else str(ref_outcome.first_violation)
        linz_verdict = "OK" if linz_outcome.ok else str(linz_outcome.first_violation)
        problem = (
            f"verdict-disagreement: refinement={ref_verdict}; "
            f"linearizability={linz_verdict}"
        )
    elif not linz_outcome.ok and not expected:
        problem = str(linz_outcome.first_violation)
    elif not ref_outcome.ok:
        problem = str(ref_outcome.first_violation)
    ok = problem is None
    if args.json:
        payload = {
            "ok": ok,
            "mode": "both",
            "program": args.program,
            "variant": args.variant,
            "agree": agree,
            "expected_divergence": divergence if expected else None,
            "problem": problem,
            "refinement": ref_outcome.to_dict(),
            "linz": linz_outcome.to_dict(),
        }
        if recovery is not None:
            payload["recovery"] = recovery
        _emit_json(payload, log)
    else:
        ref_text = "OK" if ref_outcome.ok else "VIOLATION"
        linz_text = "OK" if linz_outcome.ok else "VIOLATION"
        print(f"cross-validation of {args.log}: refinement={ref_text}, "
              f"linearizability={linz_text}")
        if expected:
            print(f"  expected divergence: {divergence}")
        elif problem is not None:
            print(f"  problem: {problem}")
    return 0 if ok else 2


def _cmd_linz(args) -> int:
    """``vyrd linz <program|logfile>``."""
    from ..linz import linz_config

    if args.target in PROGRAMS:
        config = linz_config(args.target, args.variant)
        result = run_program(
            args.target,
            buggy=args.buggy,
            num_threads=args.threads,
            calls_per_thread=args.calls,
            seed=args.seed,
        )
        log = result.log
        source = f"{args.target} (seed {args.seed})"
        program = args.target
    else:
        if args.program is None:
            print("error: checking a log file requires --program",
                  file=sys.stderr)
            return 2
        program = args.program
        config = linz_config(program, args.variant)
        if args.recover:
            recovered = recover_log(args.target)
            log = recovered.log
        else:
            try:
                log = load_log(args.target)
            except LogFormatError as exc:
                if args.json:
                    print(json.dumps({
                        "ok": False,
                        "problem": str(exc),
                        "error_type": "LogFormatError",
                    }, indent=2))
                else:
                    print(f"cannot read log: {exc}", file=sys.stderr)
                return 2
        source = args.target
    outcome, error = _run_linz_search(args, log, config.linz_spec_factory)
    if outcome is None:
        return _search_error(args, error)
    if args.json:
        payload = outcome.to_dict()
        payload["program"] = program
        payload["variant"] = args.variant
        _emit_json(payload, log)
    else:
        print(f"linearizability of {source}: {outcome.summary()}")
        if not outcome.ok:
            print(f"  problem: {outcome.first_violation}")
    return 0 if outcome.ok else 2


def _cmd_races(args) -> int:
    from ..races import check_races, format_race_outcome, render_first_race

    log = load_log(args.log)
    outcome = check_races(log, detectors=args.detector,
                          atomic_locs=tuple(args.atomic_prefix))
    if args.json:
        _emit_json(outcome.to_dict(), log)
    else:
        print(
            format_race_outcome(
                outcome, title=f"race detection ({args.detector}) of {args.log}"
            )
        )
        excerpt = render_first_race(log, outcome, context=args.context)
        if excerpt is not None:
            print(excerpt)
    return 0 if outcome.ok else 1


def _cmd_faults(args) -> int:
    from ..faults import Fault, FaultPlan, run_fault_campaign

    plan = None
    if args.plan:
        with open(args.plan, "r", encoding="utf-8") as handle:
            spec = json.load(handle)
        plan = FaultPlan(
            seed=spec.get("seed", args.seed),
            faults=tuple(
                Fault(
                    kind=entry["kind"],
                    task=entry.get("task"),
                    frac=entry.get("frac", 0.0),
                    bit=entry.get("bit", 0),
                    seconds=entry.get("seconds", 0.0),
                    every=entry.get("every", 1),
                )
                for entry in spec["faults"]
            ),
        )
    recorder = _obs_recorder(args)
    start = time.perf_counter()
    report = run_fault_campaign(
        program=args.program,
        seed=args.seed,
        plan=plan,
        jobs=args.jobs,
        num_runs=args.seeds,
        num_threads=args.threads,
        calls_per_thread=args.calls,
        timeout=args.timeout,
        max_retries=args.retries,
        obs=recorder,
    )
    elapsed = time.perf_counter() - start
    if args.json:
        payload = report.to_dict()
        payload["seconds"] = round(elapsed, 3)
        _finish_obs(args, recorder, payload)
        print(json.dumps(payload, indent=2))
        return 0 if report.ok else 1
    verdict = "survived" if report.signatures_match else "DIVERGED"
    print(
        f"fault campaign on {args.program} (plan seed {report.seed}, "
        f"{report.num_runs} schedules, jobs={report.jobs}): {verdict} in "
        f"{elapsed:.2f}s"
    )
    counts = report.plan
    print(
        f"  injected: {counts['crashes']} crash(es), {counts['hangs']} "
        f"hang(s), {counts['torn_logs']} torn log(s), {counts['bitflips']} "
        f"bit flip(s), {counts['slow_ios']} slow-io"
    )
    incidents = report.incident_counts
    survived = ", ".join(f"{k}={v}" for k, v in sorted(incidents.items()))
    print(f"  incidents survived: {survived or 'none'}")
    print(
        f"  signature: baseline {report.baseline_signature[:16]}... "
        f"{'==' if report.signatures_match else '!='} faulted "
        f"{report.faulted_signature[:16]}..."
    )
    for entry in report.recoveries:
        fault = entry["fault"]
        state = "ok" if entry["ok"] else "FAILED"
        print(
            f"  recovery [{state}] {fault['kind']} @ byte "
            f"{fault.get('offset')}: salvaged {entry['salvaged_records']}/"
            f"{entry['total_records']} records"
            + (
                f", error reported at byte {entry['error_offset']} "
                f"({entry['cause']})"
                if entry["error_offset"] is not None else ""
            )
        )
    if report.tracer_log_identical is not None:
        state = "identical" if report.tracer_log_identical else "DIVERGED"
        print(f"  slow-io log: {state}")
    restarts = sum(e["restarts"] for e in report.producer_kill_checks)
    absorbed = sum(
        e["retries_absorbed"] for e in report.brownout_checks
    )
    caught_up = sum(
        e["catchup_records"] or 0 for e in report.catchup_checks
    )
    print(
        "  serve rounds: producer-kill "
        f"[{'ok' if report.producer_kill_ok else 'FAILED'}] "
        f"{restarts} restart(s), brownout "
        f"[{'ok' if report.brownout_ok else 'FAILED'}] "
        f"{absorbed} store retries absorbed, degraded catch-up "
        f"[{'ok' if report.catchup_ok else 'FAILED'}] "
        f"{caught_up} records re-verified offline"
    )
    print(f"  verdict: {'OK' if report.ok else 'FAILED'}")
    _finish_obs(args, recorder, title=f"{args.program} fault-campaign profile")
    return 0 if report.ok else 1


def _cmd_profile(args) -> int:
    from ..obs import MetricsRecorder, format_metrics, write_trace

    recorder = MetricsRecorder()
    result = run_program(
        args.program,
        buggy=args.buggy,
        num_threads=args.threads,
        calls_per_thread=args.calls,
        seed=args.seed,
        mode=args.mode,
        online=args.online,
        obs=recorder,
    )
    outcome = (
        result.online_outcome if args.online else result.vyrd.check_offline()
    )
    if args.trace_out:
        write_trace(recorder, args.trace_out)
    if args.json:
        payload = {
            "ok": outcome.ok,
            "program": args.program,
            "variant": "buggy" if args.buggy else "correct",
            "seed": args.seed,
            "threads": args.threads,
            "calls": args.calls,
            "mode": args.mode,
            "online": args.online,
            "records": len(result.log),
            "refinement": outcome.to_dict(),
            "metrics": recorder.to_dict(),
        }
        if args.trace_out:
            payload["trace"] = args.trace_out
        print(json.dumps(payload, indent=2))
        return 0 if outcome.ok else 1
    check = "online" if args.online else "offline"
    print(
        f"profiled {args.program} "
        f"({'buggy' if args.buggy else 'correct'}, {check} {args.mode} "
        f"check), {args.threads} threads x {args.calls} calls, seed "
        f"{args.seed}: {len(result.log)} log records, "
        f"{'no violation' if outcome.ok else 'VIOLATION'}"
    )
    print()
    print(format_metrics(recorder, title=f"{args.program} profile"))
    if args.trace_out:
        print(f"trace written to {args.trace_out}")
    return 0 if outcome.ok else 1


def _cmd_serve(args) -> int:
    import tempfile

    from ..core import log_signature
    from ..serve import LocalDirectoryStore, serve_campaign

    recorder = _obs_recorder(args)
    root = args.root or tempfile.mkdtemp(prefix="vyrd-serve-")
    store = LocalDirectoryStore(root)
    run_kwargs = {
        "buggy": args.buggy,
        "num_threads": args.threads,
        "calls_per_thread": args.calls,
        "mode": args.mode,
    }
    start = time.perf_counter()
    report = serve_campaign(
        args.program,
        store,
        sessions=args.sessions,
        base_seed=args.base_seed,
        num_shards=args.shards,
        jobs=args.jobs,
        mode=args.mode,
        races=args.races,
        sync=args.sync,
        batch_records=args.batch_records,
        queue_records=args.queue_records,
        checker_delay=args.checker_delay,
        timeout=args.timeout,
        run_kwargs=run_kwargs,
        supervise=args.supervise,
        max_restarts=args.max_restarts,
        kill_producer_after=args.kill_producer_after,
        store_retries=args.store_retries,
        degrade_lag=args.degrade_lag,
        obs=recorder,
    )
    elapsed = time.perf_counter() - start
    mismatches = []
    if args.verify_direct:
        # The determinism gate: the daemon's merged canonical order must be
        # byte-identical (by signature) to a single-process run, shard
        # count and backpressure notwithstanding.
        direct_kwargs = dict(run_kwargs)
        if args.races:
            direct_kwargs.setdefault("log_locks", True)
            direct_kwargs.setdefault("log_reads", True)
        for result in report.sessions:
            seed = int(result.session.rsplit("-", 1)[1])
            solo = run_program(args.program, seed=seed, **direct_kwargs)
            expected = log_signature(solo.log)
            if result.signature != expected:
                mismatches.append({
                    "session": result.session,
                    "served": result.signature,
                    "direct": expected,
                })
    ok = report.ok and not mismatches
    if args.json:
        payload = report.to_dict()
        payload.update({
            "ok": ok,
            "program": args.program,
            "root": root,
            "shards": args.shards,
            "seconds": round(elapsed, 3),
            "records_per_sec": (
                round(report.records / elapsed, 1) if elapsed > 0 else None
            ),
            "restarts": sum(s.restarts for s in report.sessions),
            "degraded_sessions": sum(
                1 for s in report.sessions if s.degraded
            ),
            "gave_up_sessions": sum(
                1 for s in report.sessions if s.gave_up
            ),
        })
        if args.verify_direct:
            payload["direct_signature_match"] = not mismatches
            payload["mismatches"] = mismatches
        _finish_obs(args, recorder, payload)
        print(json.dumps(payload, indent=2))
        return 0 if ok else 1
    print(
        f"served {args.program} ({'buggy' if args.buggy else 'correct'}): "
        f"{args.sessions} session(s) x {args.shards} shard(s), "
        f"{report.records} records in {elapsed:.2f}s -> {root}"
    )
    for result in report.sessions:
        state = "ok" if result.ok else "FAILED"
        verdict = (
            "no violation" if result.outcome and result.outcome.ok
            else "VIOLATION" if result.outcome else "unchecked"
        )
        chain = "chain ok" if result.chain_ok else "CHAIN BROKEN"
        line = (
            f"  [{state}] {result.session}: {result.records} records, "
            f"{verdict}, {chain}"
        )
        stats = result.stats
        if stats.get("pause_raises"):
            line += f", backpressure x{stats['pause_raises']}"
        if result.restarts:
            line += f", producer restarts x{result.restarts}"
        if result.gave_up:
            line += ", supervisor GAVE UP"
        if result.degraded:
            line += ", degraded (caught up offline)"
        if stats.get("store", {}).get("retries"):
            line += f", store retries x{stats['store']['retries']}"
        if result.error:
            line += f" ({result.error})"
        print(line)
    if args.verify_direct:
        if mismatches:
            for entry in mismatches:
                print(
                    f"  signature MISMATCH {entry['session']}: served "
                    f"{entry['served'][:16]}... != direct "
                    f"{entry['direct'][:16]}...",
                    file=sys.stderr,
                )
        else:
            print("  signatures identical to single-process reruns")
    if report.violations:
        print(f"  {report.violations} session(s) detected violations")
    _finish_obs(args, recorder, title=f"{args.program} serve profile")
    return 0 if ok else 1


def _collect_chain_targets(paths):
    """Expand CLI paths into ``(path, expected_head)`` pairs.

    A directory must hold a session ``MANIFEST.json``; its shard files are
    audited against the manifest's recorded head digests (names in the
    manifest are store-relative, so shards resolve against the session
    directory's parent).
    """
    import os

    targets = []
    for target in paths:
        if os.path.isdir(target):
            manifest_path = os.path.join(target, "MANIFEST.json")
            if not os.path.exists(manifest_path):
                raise FileNotFoundError(
                    f"{target}: no MANIFEST.json (not a session directory)"
                )
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            root = os.path.dirname(os.path.abspath(target))
            for entry in manifest["shards"]:
                targets.append((
                    os.path.join(root, entry["name"]), entry["head_digest"]
                ))
        else:
            targets.append((target, None))
    return targets


def _cmd_verify_chain(args) -> int:
    from ..core import verify_chain

    if args.expected_head and len(args.paths) > 1:
        print("--expected-head takes exactly one log file", file=sys.stderr)
        return 2
    try:
        targets = _collect_chain_targets(args.paths)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.expected_head:
        targets = [(path, args.expected_head) for path, _ in targets]
    reports = [verify_chain(path, expected_head=head)
               for path, head in targets]
    failed = [
        report for report in reports
        if report.tampered or (args.require_chained and not report.chained)
    ]
    if args.json:
        print(json.dumps({
            "ok": not failed,
            "files": len(reports),
            "tampered": sum(1 for r in reports if r.tampered),
            "reports": [r.to_dict() for r in reports],
        }, indent=2))
        return 1 if failed else 0
    for report in reports:
        if not report.chained:
            state = "UNCHAINED" if args.require_chained else "unchained"
            print(f"[{state}] {report.path}: {report.records} records "
                  f"(no integrity claim)")
            continue
        if report.ok:
            anchored = (
                " (head matches manifest)" if report.head_match else ""
            )
            print(
                f"[ok] {report.path}: {report.records} records, head "
                f"{report.head_digest[:16]}...{anchored}"
            )
        elif report.error_offset is not None:
            print(
                f"[TAMPERED] {report.path}: chain breaks at byte "
                f"{report.error_offset} (record {report.error_record}): "
                f"{report.cause}; {report.records} records salvageable"
            )
        else:
            print(
                f"[TAMPERED] {report.path}: chain valid but head "
                f"{report.head_digest[:16]}... does not match the "
                f"recorded digest (tail truncated at a frame boundary?)"
            )
    if failed:
        print(f"{len(failed)} of {len(reports)} file(s) failed "
              f"verification", file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args) -> int:
    log = load_log(args.log)
    print(render_trace(log, include_writes=args.writes, max_rows=args.max_rows))
    return 0


def _cmd_witness(args) -> int:
    log = load_log(args.log)
    print(render_witness(log))
    return 0


_COMMANDS = {
    "programs": _cmd_programs,
    "lint": _cmd_lint,
    "analyze": _cmd_analyze,
    "run": _cmd_run,
    "explore": _cmd_explore,
    "check": _cmd_check,
    "linz": _cmd_linz,
    "faults": _cmd_faults,
    "profile": _cmd_profile,
    "races": _cmd_races,
    "trace": _cmd_trace,
    "witness": _cmd_witness,
    "serve": _cmd_serve,
    "verify-chain": _cmd_verify_chain,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
