"""Schedule exploration on top of the deterministic kernel.

The paper deliberately trades completeness for scalability: VYRD checks the
single interleaving produced by one run.  Because our substrate is a
deterministic simulator, we can do better on small instances -- this module
adds two exploration drivers (an *extension* relative to the paper, recorded
in DESIGN.md):

* :func:`explore_exhaustive` -- depth-first enumeration of **all** schedules
  of a program up to a run budget, using :class:`ReplayScheduler` decision
  vectors.  On small programs this turns VYRD into a bounded model checker
  for refinement.
* :func:`explore_swarm` -- a portfolio of seeded random schedules; this is
  the paper's "large numbers of repetitions of the same experiment"
  methodology packaged as a reusable driver.

Both drivers take a ``program``: a callable that accepts a
:class:`~repro.concurrency.schedulers.Scheduler`, builds a fresh kernel plus
data structures, runs to completion, and returns an arbitrary outcome value
(or raises).  The drivers aggregate outcomes and first failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from .schedulers import RandomScheduler, ReplayScheduler, Scheduler


@dataclass
class RunRecord:
    """Outcome of a single explored run."""

    schedule: Any  # decision vector or seed
    outcome: Any = None
    error: Optional[BaseException] = None

    @property
    def failed(self) -> bool:
        return self.error is not None


@dataclass
class ExplorationResult:
    """Aggregate result of an exploration campaign."""

    runs: List[RunRecord] = field(default_factory=list)
    exhausted: bool = False  # exhaustive mode: True if the space was covered
    # Campaign accounting (swarm mode): how many runs were asked for, and how
    # many of those never ran (stop_on_failure cut the campaign short, or a
    # parallel driver cancelled outstanding work).  ``requested`` is None for
    # exhaustive campaigns, whose budget is a cap rather than a target.
    requested: Optional[int] = None
    skipped: int = 0
    # Schedule-reduction accounting (``--reduce static``): subtree roots the
    # sleep sets removed without executing.  In reduced exhaustive campaigns
    # ``skipped == pruned`` and ``requested == num_runs + skipped``, so the
    # invariant requested == executed + skipped holds in every mode; swarm
    # campaigns keep pruned == 0 (their skips are cancelled seeds).
    pruned: int = 0
    # Infrastructure incidents survived while producing the result: retries,
    # worker crashes, pool rebuilds, hang kills (dicts, see
    # concurrency.resilient).  Deliberately excluded from signature() -- a
    # campaign that recovered from faults must compare equal to one that
    # never saw any.
    interruptions: List[dict] = field(default_factory=list)
    # Merged observability counters/histograms (repro.obs snapshot shape)
    # when the campaign ran with metrics enabled; None otherwise.  Only the
    # deterministic part of the recorders crosses process boundaries, so a
    # full campaign produces the same metrics under any job count -- but,
    # like interruptions, excluded from signature(): a stop_on_failure
    # campaign may have speculatively executed (and measured) runs a serial
    # one never started.
    metrics: Optional[dict] = None

    @property
    def num_runs(self) -> int:
        return len(self.runs)

    @property
    def failures(self) -> List[RunRecord]:
        return [r for r in self.runs if r.failed]

    @property
    def first_failure(self) -> Optional[RunRecord]:
        for record in self.runs:
            if record.failed:
                return record
        return None

    def outcomes(self) -> set:
        """Distinct outcome values across successful runs."""
        return {r.outcome for r in self.runs if not r.failed}

    def signature(self) -> dict:
        """Canonical digest of the campaign, for serial/parallel comparison.

        Errors are reduced to ``(type name, message)`` so that a failure
        revived from a worker process (whose exception object is a
        :class:`~repro.concurrency.parallel.RemoteError` surrogate) compares
        equal to the in-process original; schedules are normalized to tuples.
        Two campaigns that explored the same schedules to the same outcomes
        have equal signatures regardless of which engine produced them.
        """
        runs = []
        for record in self.runs:
            schedule = record.schedule
            if isinstance(schedule, list):
                schedule = tuple(schedule)
            if record.failed:
                error = record.error
                name = getattr(error, "remote_type", type(error).__name__)
                runs.append((schedule, None, (name, str(error))))
            else:
                runs.append((schedule, record.outcome, None))
        return {"runs": runs, "exhausted": self.exhausted}

    def to_dict(self) -> dict:
        """JSON-serializable summary (CLI ``explore --json``)."""
        return {
            "num_runs": self.num_runs,
            "requested": self.requested,
            "skipped": self.skipped,
            "pruned": self.pruned,
            "exhausted": self.exhausted,
            "num_failures": len(self.failures),
            "interruptions": list(self.interruptions),
            "outcomes": sorted(repr(o) for o in self.outcomes()),
            "metrics": self.metrics,
            "failures": [
                {
                    "schedule": r.schedule,
                    "error_type": getattr(
                        r.error, "remote_type", type(r.error).__name__
                    ),
                    "error": str(r.error),
                }
                for r in self.failures
            ],
        }


def _program_metrics(program) -> Optional[dict]:
    """Deterministic snapshot of a resolved program's recorder, if any.

    :meth:`repro.harness.ProgramSpec.resolve_program` attaches the
    accumulating :class:`repro.obs.MetricsRecorder` as ``obs_recorder``;
    plain callables without one yield ``None``.
    """
    recorder = getattr(program, "obs_recorder", None)
    if recorder is None:
        return None
    return recorder.counters_snapshot()


class _AlwaysFirst(Scheduler):
    """Fallback for exhaustive DFS: always take alternative 0, so that the
    backtracking increment enumerates every subtree exactly once."""

    def pick(self, runnable: List, step: int):
        return min(runnable, key=lambda t: t.tid)


def explore_exhaustive(
    program: Callable[[Scheduler], Any],
    max_runs: int = 10_000,
    stop_on_failure: bool = False,
    reducer=None,
) -> ExplorationResult:
    """Enumerate schedules depth-first until the space or budget is exhausted.

    The enumeration works backwards from each completed run's decision trace:
    the deepest decision point with an untried alternative is incremented and
    everything after it is dropped, exactly like iterative DFS over the
    schedule tree.  Beyond the scripted prefix, every run takes alternative 0
    at each new decision point (so increments cover the whole tree).

    With a ``reducer`` (:class:`repro.concurrency.reduction.StaticReducer`),
    the same tree is walked with sleep sets: schedules that differ from an
    explored one only by swaps of statically-independent steps are pruned
    (counted in ``result.pruned``/``skipped``) instead of executed.  The
    reduced campaign reports the same outcome set as the unreduced one.
    """
    if reducer is not None:
        return _explore_exhaustive_reduced(
            program, max_runs, stop_on_failure, reducer
        )
    result = ExplorationResult()
    prefix: List[int] = []
    while len(result.runs) < max_runs:
        scheduler = ReplayScheduler(decisions=prefix, fallback=_AlwaysFirst())
        record = RunRecord(schedule=list(prefix))
        try:
            record.outcome = program(scheduler)
        except Exception as exc:  # outcome of interest, not a crash of ours
            record.error = exc
        result.runs.append(record)
        record.schedule = [index for index, _ in scheduler.trace]
        if record.failed and stop_on_failure:
            break
        # Back up to the deepest choice point with an untried alternative.
        trace = scheduler.trace
        next_prefix = None
        for depth in range(len(trace) - 1, -1, -1):
            index, num_choices = trace[depth]
            if index + 1 < num_choices:
                next_prefix = [i for i, _ in trace[:depth]] + [index + 1]
                break
        if next_prefix is None:
            result.exhausted = True
            break
        prefix = next_prefix
    result.metrics = _program_metrics(program)
    return result


def _explore_exhaustive_reduced(
    program: Callable[[Scheduler], Any],
    max_runs: int,
    stop_on_failure: bool,
    reducer,
) -> ExplorationResult:
    """Sleep-set DFS over the schedule tree (see ``reduction``).

    Works from an explicit frontier of ``(prefix, sleep)`` entries: each run
    replays its prefix with its inherited sleep set and generates its own
    unexplored siblings, so this loop is the one-worker instance of the
    protocol :func:`repro.concurrency.parallel.parallel_exhaustive` shards.
    Runs are reported in schedule-lexicographic order (the unreduced DFS
    order) unless ``stop_on_failure`` truncates the campaign.
    """
    from .reduction import ReducedReplayScheduler

    result = ExplorationResult()
    stack: List[tuple] = [([], {})]
    pruned = 0
    while stack and len(result.runs) < max_runs:
        prefix, sleep = stack.pop()
        scheduler = ReducedReplayScheduler(
            decisions=prefix, sleep=sleep, reducer=reducer
        )
        record = RunRecord(schedule=list(prefix))
        try:
            record.outcome = program(scheduler)
        except Exception as exc:
            record.error = exc
        record.schedule = [index for index, _ in scheduler.trace]
        result.runs.append(record)
        if record.failed and stop_on_failure:
            break
        entries, newly_pruned = scheduler.siblings()
        pruned += newly_pruned
        # LIFO: push (depth ascending, alternative descending) so pops walk
        # the deepest decision point first, lowest alternative first -- the
        # unreduced DFS order.
        stack.extend(
            sorted(entries, key=lambda e: (len(e[0]), -e[0][-1]))
        )
    else:
        if not stack:
            result.exhausted = True
    if result.first_failure is None or not stop_on_failure:
        result.runs.sort(key=lambda r: tuple(r.schedule))
    result.pruned = pruned
    result.skipped = pruned
    result.requested = len(result.runs) + pruned
    result.metrics = _program_metrics(program)
    return result


def explore_swarm(
    program: Callable[[Scheduler], Any],
    num_runs: int = 100,
    base_seed: int = 0,
    stop_on_failure: bool = False,
    scheduler_factory: Callable[[int], Scheduler] = None,
) -> ExplorationResult:
    """Run ``program`` under ``num_runs`` differently seeded random schedules."""
    make = scheduler_factory or (lambda seed: RandomScheduler(seed))
    result = ExplorationResult(requested=num_runs)
    for i in range(num_runs):
        seed = base_seed + i
        record = RunRecord(schedule=seed)
        try:
            record.outcome = program(make(seed))
        except Exception as exc:
            record.error = exc
        result.runs.append(record)
        if record.failed and stop_on_failure:
            break
    result.skipped = num_runs - len(result.runs)
    result.metrics = _program_metrics(program)
    return result
