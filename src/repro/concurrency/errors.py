"""Errors raised by the cooperative concurrency simulator.

The simulator replaces native threads with generator coroutines driven by a
seeded scheduler (see :mod:`repro.concurrency.kernel`).  All error conditions
detected by the kernel -- deadlocks, misuse of synchronization primitives,
crashed simulated threads -- are reported through the exception types in this
module so that callers can distinguish *simulation* problems from
*verification* results.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for every error raised by the concurrency simulator."""


class DeadlockError(SimulationError):
    """No runnable thread remains but non-daemon threads are still blocked.

    Attributes
    ----------
    blocked:
        A list of ``(thread_name, reason)`` pairs describing each blocked
        thread and the resource it is waiting for.
    """

    def __init__(self, blocked):
        self.blocked = list(blocked)
        details = ", ".join(f"{name} waiting on {reason}" for name, reason in self.blocked)
        super().__init__(f"deadlock detected: {details}")


class LockError(SimulationError):
    """A synchronization primitive was used incorrectly.

    Examples: releasing a lock the current thread does not own, or ending a
    read section of a reader-writer lock that was never begun.
    """


class SimThreadError(SimulationError):
    """A simulated thread raised an unexpected Python exception.

    The original exception is preserved as ``__cause__`` and the offending
    thread is available as :attr:`thread`.
    """

    def __init__(self, thread, cause):
        self.thread = thread
        super().__init__(f"simulated thread {thread.name!r} (tid={thread.tid}) crashed: {cause!r}")
        self.__cause__ = cause


class StepLimitExceeded(SimulationError):
    """The kernel executed more scheduling steps than ``max_steps`` allows.

    Usually indicates a livelock (e.g. a daemon spin loop that never lets the
    application threads finish) or a run that simply needs a larger budget.
    """

    def __init__(self, max_steps):
        self.max_steps = max_steps
        super().__init__(f"exceeded scheduling step limit of {max_steps}")


class KernelStopped(SimulationError):
    """Raised inside a simulated thread when the kernel is shutting down.

    Daemon threads that are still runnable when all application threads have
    finished receive this exception so that their ``finally`` blocks run.
    Thread bodies should not catch and swallow it.
    """
