"""Sleep-set schedule reduction driven by the static effect analysis.

Exhaustive exploration (:mod:`repro.concurrency.explore`) enumerates every
interleaving, but most schedules differ only by swaps of *independent*
steps -- steps whose order provably cannot change any view, verdict or
happens-before order.  This module prunes those redundant schedules with
classic sleep sets (Godefroid), fed by two layers of evidence:

* **Static layer** -- the :class:`repro.lint.effects.ClassEffects`
  independence matrix.  A pair of operations may be reduced only when the
  analyzer bounded both footprints (no VY008) and classified the pair
  ``independent`` or ``conditional``; a ``dependent`` pair, an incomplete
  operation, or a step executed outside any ``@operation`` (daemons,
  worker glue) is never reduced.  The static matrix is the *license*:
  no dynamic refinement is consulted for a pair it does not clear.
* **Dynamic layer** -- the concrete step descriptors harvested from the
  run itself (:func:`describe_syscall`).  ``conditional`` pairs (same
  structure, possibly-distinct elements) commute exactly when their
  concrete steps touch different cells and different locks, which the
  descriptors decide per step.

**Why harvested next-steps are sound.**  Sleep sets need to know, at a
decision node, which step each enabled thread *would* take.  On this
substrate that step is already determined: a ready simulated thread is
suspended at a ``yield`` with its resume value fixed (the kernel computes
``send_value`` when the previous syscall executes, not at resume time), so
the next syscall it yields is a function of its own suspended state alone.
The only loophole -- Python-level shared state read while resuming -- is
exactly what VY005/VY008 police: any operation with an unvetted hidden
write has an incomplete footprint and is excluded from reduction.  The
run therefore reveals every enabled thread's pending step at node ``d``
the next time that thread executes (it cannot have changed in between);
a thread that never runs again stays unknown and is conservatively
treated as dependent with everything.

**Sleep-set protocol.**  A frontier entry is ``(prefix, sleep)`` where
``sleep`` maps tids to the (method, descriptor) step already explored in a
sibling subtree.  :class:`ReducedReplayScheduler` replays the prefix,
then at every free decision picks the first *non-sleeping* thread,
snapshots the node's sleep set, and filters the sleep set through each
executed step (an entry survives only steps it is independent of).  After
the run, :meth:`ReducedReplayScheduler.siblings` emits, for every free
depth, the unexplored alternatives exactly as the unreduced frontier
protocol does -- except that alternatives already asleep are *pruned*
(counted, never executed) and each generated sibling inherits
``{u in sleep + earlier-siblings : independent(u, step_into_sibling)}``.
Every entry's sleep set is computed by the run that generated it, so
:func:`repro.concurrency.parallel.parallel_exhaustive` shards the frontier
with no extra coordination and serial and parallel reduced campaigns
cover the identical schedule set.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from .kernel import (
    AcquireSys,
    CommitSys,
    Pass,
    ReadSys,
    ReleaseSys,
    RWBeginReadSys,
    RWBeginWriteSys,
    RWEndReadSys,
    RWEndWriteSys,
    WriteSys,
)
from .schedulers import Scheduler

# Step descriptors: small picklable tuples naming the shared effect of one
# executed kernel step.
PASS = ("pass",)    # pure scheduling point, no effect
EXIT = ("exit",)    # thread finished (changes runnable set, wakes joiners)
OTHER = ("other",)  # replay entries, joins, condition ops, commit blocks

#: A harvested step: (operation method name or None, descriptor).
Step = Tuple[Optional[str], tuple]


def describe_syscall(syscall) -> tuple:
    """Collapse a syscall to the shared effect that decides commutation."""
    if isinstance(syscall, Pass):
        return PASS
    if isinstance(syscall, ReadSys):
        return ("read", syscall.cell.name)
    if isinstance(syscall, WriteSys):
        return ("write", syscall.cell.name, bool(syscall.commit))
    if isinstance(syscall, AcquireSys):
        return ("lock", syscall.lock.name, False)
    if isinstance(syscall, ReleaseSys):
        return ("lock", syscall.lock.name, bool(syscall.commit))
    if isinstance(syscall, (RWBeginReadSys, RWEndReadSys, RWBeginWriteSys)):
        return ("lock", syscall.rwlock.name, False)
    if isinstance(syscall, RWEndWriteSys):
        return ("lock", syscall.rwlock.name, bool(syscall.commit))
    if isinstance(syscall, CommitSys):
        return ("commit",)
    return OTHER


def _commits(descr: tuple) -> bool:
    return descr[0] == "commit" or (
        descr[0] in ("write", "lock") and bool(descr[-1])
    )


def steps_commute(a: tuple, b: tuple) -> bool:
    """Descriptor-level commutation of two concrete steps.

    Commit-carrying steps never commute with each other: commit order is
    the spec's linearization order, and swapping it could change which
    view each commit is checked against.  Everything else commutes iff
    the steps touch disjoint pieces of shared state (a lock and a cell
    are always disjoint; two reads always commute).
    """
    if _commits(a) and _commits(b):
        return False
    ka, kb = a[0], b[0]
    if ka == "commit" or kb == "commit":
        return True  # no memory effect; the commit/commit case is above
    if ka == "lock" and kb == "lock":
        return a[1] != b[1]
    if ka == "lock" or kb == "lock":
        return True  # lock state and cell state are disjoint
    if ka == "read" and kb == "read":
        return True
    return a[1] != b[1]  # at least one write: must be different cells


def current_operation(thread, operations: FrozenSet[str]) -> Optional[str]:
    """The ``@operation`` method ``thread`` is suspended inside, if any.

    Walks the generator's ``yield from`` chain outside-in and returns the
    first frame whose code name is a known operation -- the top-level
    public operation, even when the thread is currently deep in a helper.
    Daemon bodies and worker glue yield no match and come back ``None``
    (opaque: dependent with everything).
    """
    gen = thread.gen
    while gen is not None:
        frame = getattr(gen, "gi_frame", None)
        if frame is None:
            return None
        name = frame.f_code.co_name
        if name in operations:
            return name
        gen = getattr(gen, "gi_yieldfrom", None)
    return None


class StaticReducer:
    """Picklable independence oracle built from one class's effect analysis.

    ``matrix`` maps ordered operation-name pairs ``(a, b)`` with
    ``a <= b`` to the static verdict string; ``opaque`` holds operations
    with incomplete footprints (VY008), which are never reduced.
    """

    __slots__ = ("matrix", "operations", "opaque")

    def __init__(
        self,
        matrix: Dict[Tuple[str, str], str],
        operations: Iterable[str],
        opaque: Iterable[str] = (),
    ):
        self.matrix = dict(matrix)
        self.operations = frozenset(operations)
        self.opaque = frozenset(opaque)

    @classmethod
    def from_effects(cls, effects) -> "StaticReducer":
        """Build from a :class:`repro.lint.effects.ClassEffects`."""
        return cls(
            matrix={
                pair: verdict.verdict
                for pair, verdict in effects.matrix.items()
            },
            operations=effects.operations,
            opaque=effects.incomplete_operations(),
        )

    def allows(self, a: str, b: str) -> bool:
        """May steps of operations ``a`` and ``b`` ever be reduced?"""
        if a in self.opaque or b in self.opaque:
            return False
        verdict = self.matrix.get((min(a, b), max(a, b)))
        return verdict in ("independent", "conditional")

    def independent(self, a: Step, b: Step) -> bool:
        """Do two harvested steps commute (state, verdicts and HB order)?"""
        method_a, descr_a = a
        method_b, descr_b = b
        if descr_a == PASS or descr_b == PASS:
            return True  # a no-op commutes with anything
        if descr_a in (EXIT, OTHER) or descr_b in (EXIT, OTHER):
            return False
        if method_a is None or method_b is None:
            return False  # outside any operation: opaque
        if not self.allows(method_a, method_b):
            return False
        return steps_commute(descr_a, descr_b)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, StaticReducer)
            and self.matrix == other.matrix
            and self.operations == other.operations
            and self.opaque == other.opaque
        )

    def __reduce__(self):
        return (
            StaticReducer,
            (self.matrix, self.operations, self.opaque),
        )


class ReducedReplayScheduler(Scheduler):
    """A :class:`ReplayScheduler` variant that carries a sleep set.

    Replays ``decisions`` exactly; beyond them, picks the lowest-tid
    runnable thread **not in the sleep set** (the unreduced fallback is
    always-first, so with an empty sleep set the two enumerate identical
    trees).  The kernel feeds every executed step back through
    :meth:`on_step` (see ``Kernel._step_listener``), which is what keeps
    the sleep set filtered and the per-depth step log aligned with
    ``trace``.
    """

    def __init__(
        self,
        decisions=(),
        sleep: Optional[Dict[int, Step]] = None,
        reducer: Optional[StaticReducer] = None,
    ):
        self.decisions = list(decisions)
        self.reducer = reducer or StaticReducer({}, ())
        self.trace: List[tuple] = []  # (chosen_index, num_choices)
        self._cursor = 0
        self._entry_sleep: Dict[int, Step] = dict(sleep or {})
        self._sleep: Dict[int, Step] = {}
        self._armed = False
        # per-depth executed step (tid, method, descr); one entry per trace
        # entry except a final step whose execution raised
        self.steps: List[tuple] = []
        # per *free* depth: (depth, runnable tids, sleep snapshot, chosen)
        self.nodes: List[tuple] = []
        # nodes where every enabled choice was asleep: the subtree is
        # provably redundant, but the in-flight run must still finish, so
        # one sleeper is woken; counted for visibility
        self.sleep_blocked = 0

    # -- scheduling ---------------------------------------------------------

    def pick(self, runnable: List, step: int):
        ordered = sorted(runnable, key=lambda t: t.tid)
        depth = len(self.trace)
        if self._cursor < len(self.decisions):
            index = self.decisions[self._cursor]
            if index >= len(ordered):
                index = len(ordered) - 1
            self._cursor += 1
        else:
            if not self._armed:
                # The inherited sleep set describes the node *after* the
                # scripted prefix; activate it only once the prefix -- and
                # the prefix's own step filtering -- is behind us.
                self._armed = True
                self._sleep = dict(self._entry_sleep)
            index = next(
                (
                    j
                    for j, t in enumerate(ordered)
                    if t.tid not in self._sleep
                ),
                None,
            )
            if index is None:
                self.sleep_blocked += 1
                index = 0
                self._sleep.pop(ordered[0].tid, None)
            self.nodes.append(
                (
                    depth,
                    tuple(t.tid for t in ordered),
                    dict(self._sleep),
                    index,
                )
            )
        self.trace.append((index, len(ordered)))
        return ordered[index]

    def on_step(self, thread, syscall) -> None:
        """Kernel hook: one executed step, atomically after its effect."""
        descr = EXIT if syscall is None else describe_syscall(syscall)
        method = None
        if self._armed and descr not in (EXIT, PASS):
            method = current_operation(thread, self.reducer.operations)
        self.steps.append((thread.tid, method, descr))
        if self._sleep:
            self._sleep.pop(thread.tid, None)
            executed = (method, descr)
            self._sleep = {
                tid: slept
                for tid, slept in self._sleep.items()
                if self.reducer.independent(slept, executed)
            }

    # -- frontier generation ------------------------------------------------

    def siblings(self) -> Tuple[List[tuple], int]:
        """Unexplored alternatives below this run, with their sleep sets.

        Returns ``(entries, pruned)``: ``entries`` are ``(prefix, sleep)``
        frontier pairs for every free-depth alternative the sleep sets did
        not remove; ``pruned`` counts the sibling subtrees they did.
        """
        indices = [i for i, _ in self.trace]
        # Reverse sweep: next_at[d][tid] = the step tid executes next at
        # depth >= d -- i.e. the step it was already committed to at every
        # node from its previous step up to d.
        next_at: Dict[int, Dict[int, Step]] = {}
        pending: Dict[int, Step] = {}
        for d in range(len(self.steps) - 1, -1, -1):
            tid, method, descr = self.steps[d]
            pending[tid] = (method, descr)
            next_at[d] = dict(pending)
        entries: List[tuple] = []
        pruned = 0
        for depth, tids, zset, chosen_index in self.nodes:
            harvested = next_at.get(depth, {})
            explored: List[Tuple[int, Step]] = []
            if depth < len(self.steps):
                _, method, descr = self.steps[depth]
                explored.append((tids[chosen_index], (method, descr)))
            for alt in range(len(tids)):
                if alt == chosen_index:
                    continue
                tid_alt = tids[alt]
                if tid_alt in zset:
                    # already explored (as a step of an earlier sibling's
                    # subtree) and nothing dependent ran since: redundant
                    pruned += 1
                    continue
                if alt < chosen_index:
                    continue  # only reachable via scripted-index clamping
                step_alt = harvested.get(tid_alt)
                sleep_alt: Dict[int, Step] = {}
                if step_alt is not None:
                    for tid_u, step_u in list(zset.items()) + explored:
                        if tid_u == tid_alt:
                            continue
                        if self.reducer.independent(step_u, step_alt):
                            sleep_alt[tid_u] = step_u
                entries.append((indices[:depth] + [alt], sleep_alt))
                if step_alt is not None:
                    explored.append((tid_alt, step_alt))
        return entries, pruned
