"""Fault-tolerant process-pool execution for the parallel explorers.

The multi-process drivers in :mod:`repro.concurrency.parallel` originally
assumed a healthy pool: a worker that died (``os._exit``, OOM kill) broke
the whole :class:`~concurrent.futures.ProcessPoolExecutor` and every
completed-but-unmerged outcome with it, and a hung worker wedged the
campaign forever.  This module supplies the recovery layer between the
drivers and the executor:

* **Per-task deadlines.**  Every dispatched chunk gets a wall-clock
  deadline; when it expires the pool's worker processes are terminated (a
  hung worker cannot be interrupted any other way), the executor is rebuilt,
  and every in-flight task is re-dispatched.  Only the task that actually
  expired is charged a retry -- innocent casualties of the pool kill ride
  again for free.
* **Bounded retry with exponential backoff and seeded jitter.**  Charged
  retries wait ``backoff_base * backoff_factor**(attempt-1)`` seconds
  (capped), stretched by a jitter drawn from a :class:`random.Random`
  seeded with ``(seed, task serial, attempt)`` -- replayable, and spread
  out so a rebuilt pool is not re-stormed.
* **Broken-pool recovery.**  ``BrokenProcessPool`` marks every pending
  future dead; the pool salvages futures that completed before the break,
  rebuilds the executor, and re-dispatches the rest.  Completed results
  held by the driver are never touched.
* **Isolation by splitting.**  A multi-item chunk that fails terminally is
  split into singleton chunks so that one poisoned schedule cannot take its
  chunk-mates down with it; the singleton results are re-assembled into the
  parent's merge slot, preserving canonical order.  A singleton that still
  fails is handed to the driver's ``give_up`` callback, which synthesizes a
  diagnosable outcome (e.g. :class:`~repro.concurrency.parallel.ExplorationTimeout`).

Determinism under retry: every run on the simulated substrate is a pure
function of its seed / decision vector, so re-executing a chunk reproduces
byte-identical records.  Retries therefore cannot reorder or duplicate
merge slots -- the drivers' canonical-order guarantee (parallel output
bit-identical to serial) survives any transient fault.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the pool tries before giving a task up.

    ``timeout`` is the per-task wall-clock ceiling in seconds (``None``
    disables the watchdog).  ``max_retries`` bounds the *charged* attempts
    beyond the first: a task is terminal once it has failed
    ``max_retries + 1`` times on its own account.  Backoff for attempt
    ``n >= 1`` is ``min(backoff_max, backoff_base * backoff_factor**(n-1))``
    stretched by up to ``jitter`` (relative), drawn deterministically from
    ``seed`` so that campaigns replay.
    """

    max_retries: int = 2
    timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    jitter: float = 0.5
    seed: int = 0

    def delay(self, serial: int, attempt: int) -> float:
        if attempt <= 0:
            return 0.0
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        rng = random.Random(f"{self.seed}:{serial}:{attempt}")
        return base * (1.0 + self.jitter * rng.random())


@dataclass
class TaskFailure:
    """Terminal failure of one task after the retry budget was exhausted."""

    kind: str  # "timeout" | "pool_broken" | "worker_error"
    message: str
    attempts: int
    elapsed: float

    def __str__(self) -> str:
        return f"{self.kind} after {self.attempts} attempt(s): {self.message}"


class _Task:
    __slots__ = (
        "key", "payload", "serial", "attempts", "deadline", "started",
        "parent", "part_index", "splittable",
    )

    def __init__(self, key, payload, serial, parent=None, part_index=0,
                 splittable=True):
        self.key = key
        self.payload = payload
        self.serial = serial
        self.attempts = 0
        self.deadline: Optional[float] = None
        self.started: float = 0.0
        self.parent: Optional["_Aggregate"] = parent
        self.part_index = part_index
        self.splittable = splittable


@dataclass
class _Aggregate:
    """Bookkeeping for a split task: collects part results in part order."""

    key: Any
    expected: int
    parts: Dict[int, Any] = field(default_factory=dict)


class ResilientPool:
    """A retrying, watchdogged façade over :class:`ProcessPoolExecutor`.

    Parameters
    ----------
    worker_fn:
        Picklable ``worker_fn(payload, extra) -> result`` executed in a
        worker process.
    make_executor:
        Zero-argument factory for a fresh executor (called again after
        every pool kill/break).
    policy:
        :class:`RetryPolicy` (timeouts, retry budget, backoff).
    split:
        ``split(payload) -> list[payload] | None`` -- how to break a
        terminally failing multi-item chunk into singletons (return ``None``
        or a single-element list when it cannot be split further).
    combine:
        ``combine(list_of_part_results) -> result`` -- reassembles split
        results into the parent's shape; required when ``split`` is given.
    give_up:
        ``give_up(payload, TaskFailure) -> result`` -- synthesizes a
        result for an unsplittable task whose retries are exhausted.  When
        omitted, the :class:`TaskFailure` itself is returned as the result.
    decorate:
        ``decorate(payload, serial, attempt) -> extra`` -- computes the
        picklable second worker argument per dispatch; this is the seam the
        fault-injection harness (:mod:`repro.faults`) hooks to target "the
        N-th task, first attempt".
    """

    def __init__(
        self,
        worker_fn: Callable,
        make_executor: Callable[[], ProcessPoolExecutor],
        policy: Optional[RetryPolicy] = None,
        split: Optional[Callable] = None,
        combine: Optional[Callable] = None,
        give_up: Optional[Callable] = None,
        decorate: Optional[Callable] = None,
    ):
        if split is not None and combine is None:
            raise ValueError("split requires combine")
        self._worker_fn = worker_fn
        self._make_executor = make_executor
        self.policy = policy or RetryPolicy()
        self._split = split
        self._combine = combine
        self._give_up = give_up
        self._decorate = decorate
        self._executor = make_executor()
        self._live: Dict[Any, _Task] = {}  # future -> task
        self._retry_at: List[tuple] = []  # (resume_time, task)
        self._ready: List[tuple] = []  # (key, result)
        self._serial = 0
        self._submitted = 0
        self.events: List[dict] = []
        self.retries = 0
        self.rebuilds = 0
        self.total_backoff = 0.0

    # -- public API ---------------------------------------------------------

    def submit(self, payload) -> int:
        """Enqueue one task; returns its key (submission ordinal)."""
        key = self._submitted
        self._submitted += 1
        task = _Task(key, payload, self._next_serial())
        self._dispatch(task)
        return key

    @property
    def has_pending(self) -> bool:
        return bool(self._live or self._retry_at or self._ready)

    @property
    def in_flight(self) -> int:
        return len(self._live) + len(self._retry_at)

    def next_completed(self) -> tuple:
        """Block until one task reaches a terminal state; return (key, result).

        Keys come back in completion order, not submission order; retries
        and recovery happen internally, so every submitted key is emitted
        exactly once.
        """
        while True:
            if self._ready:
                return self._ready.pop(0)
            if not self._live and not self._retry_at:
                raise RuntimeError("next_completed() with no pending task")
            self._pump()

    def shutdown(self) -> None:
        try:
            self._executor.shutdown(wait=True, cancel_futures=True)
        except Exception:  # pragma: no cover - executor already broken
            pass

    # -- internals ----------------------------------------------------------

    def _next_serial(self) -> int:
        serial = self._serial
        self._serial += 1
        return serial

    def _event(self, kind: str, task: _Task, detail: str = "", delay: float = 0.0):
        self.events.append({
            "kind": kind,
            "task": task.key if task.parent is None else f"{task.parent.key}.{task.part_index}",
            "serial": task.serial,
            "attempt": task.attempts,
            "detail": detail,
            "delay": round(delay, 4),
        })

    def _dispatch(self, task: _Task) -> None:
        extra = (
            self._decorate(task.payload, task.serial, task.attempts)
            if self._decorate is not None else None
        )
        future = self._executor.submit(self._worker_fn, task.payload, extra)
        now = time.monotonic()
        task.started = now
        task.deadline = (
            now + self.policy.timeout if self.policy.timeout is not None else None
        )
        self._live[future] = task

    def _pump(self) -> None:
        """One scheduling turn: flush due retries, reap futures, police deadlines."""
        now = time.monotonic()
        due = [entry for entry in self._retry_at if entry[0] <= now]
        if due:
            self._retry_at = [e for e in self._retry_at if e[0] > now]
            for _, task in due:
                self._dispatch(task)
            return
        if not self._live:
            # nothing running: sleep until the earliest retry is due
            resume = min(entry[0] for entry in self._retry_at)
            time.sleep(max(0.0, resume - time.monotonic()))
            return
        horizon = [t.deadline for t in self._live.values() if t.deadline is not None]
        horizon += [entry[0] for entry in self._retry_at]
        wait_timeout = (
            max(0.0, min(horizon) - now) if horizon else None
        )
        done, _ = wait(
            set(self._live), timeout=wait_timeout, return_when=FIRST_COMPLETED
        )
        for future in done:
            task = self._live.pop(future, None)
            if task is None:
                continue
            error = future.exception()
            if error is None:
                self._complete(task, future.result())
            elif isinstance(error, BrokenExecutor):
                self._recover_broken_pool(task)
                return
            else:
                self._event("worker_error", task, detail=repr(error))
                self._charge(task, "worker_error", repr(error))
        self._police_deadlines()

    def _police_deadlines(self) -> None:
        now = time.monotonic()
        expired = [
            task for task in self._live.values()
            if task.deadline is not None and now > task.deadline
        ]
        if not expired:
            return
        # A hung worker cannot be interrupted: kill the pool and re-dispatch
        # everything that was in flight.  Only the expired tasks pay.
        survivors: List[_Task] = []
        for future, task in list(self._live.items()):
            if future.done() and future.exception() is None and task not in expired:
                self._complete(task, future.result())
            else:
                survivors.append(task)
        self._live.clear()
        self._rebuild_executor(kill=True)
        for task in survivors:
            if task in expired:
                self._event(
                    "timeout", task,
                    detail=f"exceeded {self.policy.timeout}s deadline",
                )
                self._charge(task, "timeout",
                             f"no result within {self.policy.timeout}s")
            else:
                self._requeue(task, charge=False)

    def _recover_broken_pool(self, first_casualty: _Task) -> None:
        """The executor died under us: salvage finished futures, rebuild,
        re-dispatch the rest.  Every lost task is charged one attempt (the
        crashing worker is indistinguishable from its pool-mates)."""
        lost = [first_casualty]
        for future, task in list(self._live.items()):
            if future.done() and future.exception() is None:
                self._complete(task, future.result())
            else:
                lost.append(task)
        self._live.clear()
        self._rebuild_executor(kill=False)
        for task in lost:
            self._event("pool_broken", task, detail="worker process died")
            self._charge(task, "pool_broken", "process pool broke (worker died)")

    def _rebuild_executor(self, kill: bool) -> None:
        old = self._executor
        processes = list(getattr(old, "_processes", None) or {})
        if kill:
            for process in (getattr(old, "_processes", None) or {}).values():
                try:
                    process.terminate()
                except Exception:  # pragma: no cover - already dead
                    pass
        try:
            old.shutdown(wait=True, cancel_futures=True)
        except Exception:  # pragma: no cover - broken pools may misbehave
            pass
        del processes
        self.rebuilds += 1
        self._executor = self._make_executor()

    def _charge(self, task: _Task, kind: str, message: str) -> None:
        task.attempts += 1
        if task.attempts > self.policy.max_retries:
            failure = TaskFailure(
                kind=kind, message=message, attempts=task.attempts,
                elapsed=time.monotonic() - task.started,
            )
            self._terminal(task, failure)
        else:
            self._requeue(task, charge=True)

    def _requeue(self, task: _Task, charge: bool) -> None:
        delay = self.policy.delay(task.serial, task.attempts) if charge else 0.0
        if charge:
            self.retries += 1
            self.total_backoff += delay
            self._event("retry", task, delay=delay)
        self._retry_at.append((time.monotonic() + delay, task))

    def _terminal(self, task: _Task, failure: TaskFailure) -> None:
        parts = (
            self._split(task.payload)
            if self._split is not None and task.splittable else None
        )
        if parts and len(parts) > 1:
            # Isolate the poison: re-run each item alone so only the schedule
            # that actually crashes or hangs pays the price.
            self._event("split", task, detail=f"{len(parts)} singleton(s)")
            aggregate = _Aggregate(key=task.key, expected=len(parts))
            if task.parent is not None:  # pragma: no cover - one level only
                raise AssertionError("split tasks must not split again")
            for index, part in enumerate(parts):
                sub = _Task(
                    key=(task.key, index), payload=part,
                    serial=self._next_serial(), parent=aggregate,
                    part_index=index, splittable=False,
                )
                self._dispatch(sub)
            return
        self._event("gave_up", task, detail=str(failure))
        result = (
            self._give_up(task.payload, failure)
            if self._give_up is not None else failure
        )
        self._complete(task, result)

    def _complete(self, task: _Task, result) -> None:
        if task.parent is None:
            self._ready.append((task.key, result))
            return
        aggregate = task.parent
        aggregate.parts[task.part_index] = result
        if len(aggregate.parts) == aggregate.expected:
            combined = self._combine(
                [aggregate.parts[i] for i in range(aggregate.expected)]
            )
            self._ready.append((aggregate.key, combined))
