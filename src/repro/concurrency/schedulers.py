"""Schedulers for the cooperative kernel.

A scheduler's only job is to choose, at each scheduling step, which runnable
simulated thread executes next.  All schedulers are deterministic functions
of their construction parameters, so a (scheduler, program) pair always
produces the same interleaving -- the property that makes every bug found by
the harness reproducible.

Available policies:

* :class:`RoundRobinScheduler` -- cycles through runnable threads; useful in
  unit tests that need a predictable interleaving.
* :class:`RandomScheduler` -- uniform random choice from a seeded PRNG; the
  workhorse for the paper's randomized test harness (section 7.1).
* :class:`PCTScheduler` -- the probabilistic concurrency testing discipline
  (priorities plus ``depth - 1`` random priority-change points), which finds
  bugs of small "depth" with provable probability.
* :class:`ReplayScheduler` -- follows an explicit decision vector; the engine
  behind :mod:`repro.concurrency.explore`'s exhaustive enumeration.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence


class Scheduler:
    """Interface: pick the next thread among ``runnable`` (never empty)."""

    def pick(self, runnable: List, step: int):
        raise NotImplementedError

    def initial_priority(self, thread) -> int:
        """Priority assigned at spawn time (only priority schedulers care)."""
        return 0


class RoundRobinScheduler(Scheduler):
    """Cycle deterministically through runnable threads by thread id."""

    def __init__(self):
        self._last_tid = -1

    def pick(self, runnable: List, step: int):
        runnable = sorted(runnable, key=lambda t: t.tid)
        for thread in runnable:
            if thread.tid > self._last_tid:
                self._last_tid = thread.tid
                return thread
        chosen = runnable[0]
        self._last_tid = chosen.tid
        return chosen


class RandomScheduler(Scheduler):
    """Uniform random scheduling from a seeded PRNG.

    Every syscall is a potential preemption point, so this explores
    fine-grained interleavings; distinct seeds give distinct schedules.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def pick(self, runnable: List, step: int):
        return self._rng.choice(runnable)


class PCTScheduler(Scheduler):
    """Probabilistic Concurrency Testing (Burckhardt et al.) style scheduler.

    Threads get distinct random priorities; the highest-priority runnable
    thread always runs, except at ``depth - 1`` pre-drawn step indices where
    the running thread's priority is demoted below every other.  With ``d``
    the bug depth, a single run finds the bug with probability
    ``>= 1/(n * k^(d-1))``.

    Parameters
    ----------
    seed: PRNG seed.
    depth: bug depth budget (number of priority change points + 1).
    expected_steps: horizon from which change points are drawn.
    """

    DAEMON_FLOOR = -(10 ** 9)

    def __init__(self, seed: int = 0, depth: int = 3, expected_steps: int = 10_000):
        self.seed = seed
        self.depth = depth
        self._rng = random.Random(seed)
        self._change_points = set(
            self._rng.randrange(expected_steps) for _ in range(max(0, depth - 1))
        )
        self._next_low_priority = -1

    def initial_priority(self, thread) -> int:
        if thread.daemon:
            # Daemons (compression/flush loops) never terminate; under a
            # strict-priority discipline they would starve the application.
            # They run only when every application thread is blocked.
            return self.DAEMON_FLOOR - thread.tid
        return self._rng.randrange(1_000_000)

    def pick(self, runnable: List, step: int):
        chosen = max(runnable, key=lambda t: (t.priority, -t.tid))
        if step in self._change_points:
            chosen.priority = self._next_low_priority
            self._next_low_priority -= 1
            chosen = max(runnable, key=lambda t: (t.priority, -t.tid))
        return chosen


class ReplayScheduler(Scheduler):
    """Follow a recorded decision vector, then fall back to a default policy.

    At step ``i`` the scheduler picks ``runnable[decisions[i]]`` (indices into
    the runnable list sorted by tid).  Once the vector is exhausted it
    delegates to ``fallback`` (round-robin by default).  Every decision made
    -- scripted or fallback -- is appended to :attr:`trace` together with the
    number of alternatives, which is what the exhaustive explorer consumes.
    """

    def __init__(self, decisions: Sequence[int] = (), fallback: Optional[Scheduler] = None):
        self.decisions = list(decisions)
        self.fallback = fallback or RoundRobinScheduler()
        self.trace: List[tuple] = []  # (chosen_index, num_choices)
        self._cursor = 0

    def pick(self, runnable: List, step: int):
        ordered = sorted(runnable, key=lambda t: t.tid)
        if self._cursor < len(self.decisions):
            index = self.decisions[self._cursor]
            if index >= len(ordered):
                index = len(ordered) - 1
            self._cursor += 1
            chosen = ordered[index]
        else:
            chosen = self.fallback.pick(ordered, step)
            index = ordered.index(chosen)
        self.trace.append((index, len(ordered)))
        return chosen
