"""A deterministic cooperative concurrency kernel.

VYRD's checker consumes a *log* of fine-grained actions produced by truly
interleaved method executions.  The paper instruments C#/.NET and Java
programs running on native threads; under CPython the GIL makes native-thread
interleavings coarse and irreproducible, so this reproduction substitutes a
*simulated* concurrency substrate (documented in DESIGN.md):

* A *simulated thread* is a Python generator that ``yield``\\ s
  :class:`Syscall` objects at every shared-memory access and synchronization
  operation.
* The :class:`Kernel` executes one syscall at a time and asks a pluggable
  :class:`~repro.concurrency.schedulers.Scheduler` which runnable thread to
  resume next.  A seeded random scheduler therefore produces a fully
  reproducible, fine-grained interleaving -- every context switch happens at
  an explicitly marked program point.
* A :class:`Tracer` observes shared writes, commit annotations and commit
  blocks; :class:`repro.core.instrument.VyrdTracer` plugs in here to build
  the VYRD log.

Everything that happens *between* two yields of a simulated thread is atomic
by construction, which is exactly the property VYRD's commit-action logging
needs ("each logged action is performed atomically with the corresponding
log update", paper section 4.2).

Example
-------
>>> from repro.concurrency import Kernel, SharedCell
>>> cell = SharedCell("c", 0)
>>> def incr(ctx):
...     v = yield cell.read()
...     yield cell.write(v + 1)
>>> kernel = Kernel(seed=7)
>>> for i in range(2):
...     _ = kernel.spawn(incr, name=f"t{i}")
>>> kernel.run()
>>> cell.peek()  # lost update is possible under some seeds; here both ran
2
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Iterable, List, Optional

from ..obs import NULL_RECORDER, Recorder
from .errors import (
    DeadlockError,
    KernelStopped,
    SimThreadError,
    StepLimitExceeded,
)
from .schedulers import RandomScheduler, Scheduler


class Status(Enum):
    """Lifecycle states of a :class:`SimThread`."""

    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


# ---------------------------------------------------------------------------
# Syscalls
# ---------------------------------------------------------------------------


class Syscall:
    """Base class for every request a simulated thread can yield."""

    __slots__ = ()


@dataclass(frozen=True)
class Pass(Syscall):
    """A pure scheduling point with no effect (``ctx.checkpoint()``)."""

    __slots__ = ()


@dataclass(frozen=True)
class ReadSys(Syscall):
    """Read a :class:`SharedCell`; the cell's value is sent back."""

    cell: Any

    __slots__ = ("cell",)


@dataclass(frozen=True)
class WriteSys(Syscall):
    """Write ``value`` into ``cell``.

    When ``commit`` is true the tracer records a commit action atomically
    with the write -- this is how implementations annotate the paper's
    *commit action* when it coincides with the decisive shared write.
    """

    cell: Any
    value: Any
    commit: bool = False



@dataclass(frozen=True)
class AcquireSys(Syscall):
    """Acquire a reentrant :class:`~repro.concurrency.primitives.Lock`."""

    lock: Any

    __slots__ = ("lock",)


@dataclass(frozen=True)
class ReleaseSys(Syscall):
    """Release a lock.  ``commit`` marks the release as the commit action."""

    lock: Any
    commit: bool = False



@dataclass(frozen=True)
class RWBeginReadSys(Syscall):
    rwlock: Any

    __slots__ = ("rwlock",)


@dataclass(frozen=True)
class RWEndReadSys(Syscall):
    rwlock: Any

    __slots__ = ("rwlock",)


@dataclass(frozen=True)
class RWBeginWriteSys(Syscall):
    rwlock: Any

    __slots__ = ("rwlock",)


@dataclass(frozen=True)
class RWEndWriteSys(Syscall):
    rwlock: Any
    commit: bool = False



@dataclass(frozen=True)
class CommitSys(Syscall):
    """A standalone commit action (for paths with no decisive write)."""

    __slots__ = ()


@dataclass(frozen=True)
class BeginCommitBlockSys(Syscall):
    """Open the current method execution's commit block (paper section 5.2)."""

    __slots__ = ()


@dataclass(frozen=True)
class EndCommitBlockSys(Syscall):
    """Close the commit block; ``commit`` marks it as the commit action."""

    commit: bool = False



@dataclass(frozen=True)
class ReplaySys(Syscall):
    """Emit a coarse-grained, data-structure-specific log entry (section 6.2).

    ``tag`` identifies the replay routine registered with the checker and
    ``payload`` is the (immutable) data it needs.
    """

    tag: str
    payload: Any
    commit: bool = False



@dataclass(frozen=True)
class JoinSys(Syscall):
    """Block until ``thread`` finishes; its return value is sent back."""

    thread: "SimThread"

    __slots__ = ("thread",)


@dataclass(frozen=True)
class CondWaitSys(Syscall):
    """Atomically release the condition's lock and block until notified."""

    cond: Any

    __slots__ = ("cond",)


@dataclass(frozen=True)
class CondNotifySys(Syscall):
    """Wake ``count`` waiters (-1 for all); the caller must hold the lock."""

    cond: Any
    count: int = 1


# ---------------------------------------------------------------------------
# Tracer protocol
# ---------------------------------------------------------------------------


class Tracer:
    """Observer interface for kernel events relevant to VYRD logging.

    The kernel invokes these callbacks *atomically* with the corresponding
    effect (no other simulated thread can run in between), which gives the
    log-ordering guarantee of paper section 4.2 for free.
    """

    def on_write(self, tid: int, cell, old, new) -> None:  # pragma: no cover - interface
        pass

    def on_read(self, tid: int, cell) -> None:  # pragma: no cover - interface
        pass

    def on_acquire(self, tid: int, lock, mode: str = "x") -> None:  # pragma: no cover - interface
        pass

    def on_release(self, tid: int, lock, mode: str = "x") -> None:  # pragma: no cover - interface
        pass

    def on_commit(self, tid: int) -> None:  # pragma: no cover - interface
        pass

    def on_begin_commit_block(self, tid: int) -> None:  # pragma: no cover - interface
        pass

    def on_end_commit_block(self, tid: int) -> None:  # pragma: no cover - interface
        pass

    def on_replay(self, tid: int, tag: str, payload) -> None:  # pragma: no cover - interface
        pass

    def on_spawn(self, parent_tid: int, child_tid: int) -> None:  # pragma: no cover - interface
        pass

    def on_join(self, tid: int, child_tid: int) -> None:  # pragma: no cover - interface
        pass


class NullTracer(Tracer):
    """A tracer that ignores every event (used when logging is disabled)."""


# ---------------------------------------------------------------------------
# Threads
# ---------------------------------------------------------------------------


class SimThread:
    """A simulated thread: a generator plus scheduling metadata.

    Instances are created by :meth:`Kernel.spawn`; user code never
    instantiates this class directly.
    """

    __slots__ = (
        "tid",
        "name",
        "daemon",
        "gen",
        "status",
        "send_value",
        "throw_exc",
        "waiting_reason",
        "result",
        "exception",
        "joiners",
        "priority",
    )

    def __init__(self, tid: int, name: str, gen, daemon: bool):
        self.tid = tid
        self.name = name
        self.daemon = daemon
        self.gen = gen
        self.status = Status.READY
        self.send_value: Any = None
        self.throw_exc: Optional[BaseException] = None
        self.waiting_reason: Optional[str] = None
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self.joiners: List["SimThread"] = []
        self.priority: int = 0  # used by priority schedulers (PCT)

    @property
    def finished(self) -> bool:
        return self.status in (Status.DONE, Status.FAILED)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimThread tid={self.tid} name={self.name!r} {self.status.value}>"


class ThreadCtx:
    """Per-thread handle passed as the first argument of every thread body.

    Provides the thread identity (``tid``), syscall sugar that does not fit
    on a primitive object, and dynamic spawning.
    """

    __slots__ = ("tid", "name", "kernel", "thread")

    def __init__(self, tid: int, name: str, kernel: "Kernel", thread: SimThread):
        self.tid = tid
        self.name = name
        self.kernel = kernel
        self.thread = thread

    def checkpoint(self) -> Pass:
        """A pure preemption point: ``yield ctx.checkpoint()``."""
        return Pass()

    def commit(self) -> CommitSys:
        """A standalone commit action: ``yield ctx.commit()``."""
        return CommitSys()

    def begin_commit_block(self) -> BeginCommitBlockSys:
        return BeginCommitBlockSys()

    def end_commit_block(self, commit: bool = False) -> EndCommitBlockSys:
        return EndCommitBlockSys(commit)

    def replay(self, tag: str, payload, commit: bool = False) -> ReplaySys:
        """Emit a coarse-grained log entry (paper section 6.2)."""
        return ReplaySys(tag, payload, commit)

    def spawn(self, fn, *args, name: Optional[str] = None, daemon: bool = False) -> SimThread:
        """Spawn a new simulated thread from inside a running thread."""
        return self.kernel.spawn(fn, *args, name=name, daemon=daemon)

    def join(self, thread: SimThread) -> JoinSys:
        """Block until ``thread`` finishes: ``result = yield ctx.join(t)``."""
        return JoinSys(thread)


def with_lock(lock, body):
    """Run generator ``body`` while holding ``lock``.

    Usage inside a simulated thread::

        result = yield from with_lock(self.mutex, self._do_work(ctx))

    The lock is released even if ``body`` raises.
    """
    yield lock.acquire()
    try:
        result = yield from body
    finally:
        yield lock.release()
    return result


# ---------------------------------------------------------------------------
# Kernel
# ---------------------------------------------------------------------------


class Kernel:
    """Deterministic scheduler and syscall interpreter for simulated threads.

    Parameters
    ----------
    scheduler:
        Decides which runnable thread executes next.  Defaults to a
        :class:`~repro.concurrency.schedulers.RandomScheduler` built from
        ``seed``.
    seed:
        Convenience shortcut for ``scheduler=RandomScheduler(seed)``.
    tracer:
        Receives shared-write / commit / commit-block / replay events;
        VYRD's instrumentation layer plugs in here.
    max_steps:
        Upper bound on scheduling steps before :class:`StepLimitExceeded`
        is raised (guards against livelock).
    obs:
        Observability recorder (:mod:`repro.obs`).  The kernel binds its
        step counter as the recorder's trace clock, so every span recorded
        anywhere in the pipeline is keyed to this kernel's step-time.
    """

    def __init__(
        self,
        scheduler: Optional[Scheduler] = None,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
        max_steps: Optional[int] = None,
        obs: Optional[Recorder] = None,
    ):
        self.scheduler: Scheduler = scheduler if scheduler is not None else RandomScheduler(seed)
        self.tracer: Tracer = tracer if tracer is not None else NullTracer()
        self.max_steps = max_steps
        self.obs: Recorder = obs if obs is not None else NULL_RECORDER
        if self.obs.enabled:
            self.obs.bind_step_clock(lambda: self.steps)
        self.threads: List[SimThread] = []
        self.steps = 0
        self._tid_counter = itertools.count(0)
        self._running = False
        self.current: Optional[SimThread] = None
        # A scheduler exposing ``on_step`` observes every executed step --
        # ``(thread, syscall)`` after its effect applies, ``(thread, None)``
        # when the thread finishes.  Sleep-set reduction
        # (:mod:`repro.concurrency.reduction`) relies on this feed.
        self._step_listener = getattr(self.scheduler, "on_step", None)

    # -- thread management -------------------------------------------------

    def spawn(
        self,
        fn: Callable[..., Any],
        *args,
        name: Optional[str] = None,
        daemon: bool = False,
    ) -> SimThread:
        """Create a simulated thread running ``fn(ctx, *args)``.

        ``fn`` must be a generator function whose first parameter is a
        :class:`ThreadCtx`.  Threads may be spawned before :meth:`run` or
        dynamically from inside another simulated thread.
        """
        tid = next(self._tid_counter)
        thread = SimThread(tid, name or f"thread-{tid}", None, daemon)
        ctx = ThreadCtx(tid, thread.name, self, thread)
        gen = fn(ctx, *args)
        if not hasattr(gen, "send"):
            raise TypeError(f"thread body {fn!r} must be a generator function")
        thread.gen = gen
        thread.priority = self.scheduler.initial_priority(thread)
        self.threads.append(thread)
        if self.current is not None:
            # dynamic spawn from a running simulated thread: the fork edge
            # is visible to tracers (race detection needs it)
            self.tracer.on_spawn(self.current.tid, tid)
        return thread

    def _runnable(self) -> List[SimThread]:
        return [t for t in self.threads if t.status is Status.READY]

    def _app_threads_pending(self) -> bool:
        return any(not t.daemon and not t.finished for t in self.threads)

    # -- main loop ----------------------------------------------------------

    def run(self) -> None:
        """Run until every non-daemon thread has finished.

        Raises
        ------
        DeadlockError
            if non-daemon threads are blocked and nothing can run.
        SimThreadError
            if a simulated thread raises an unexpected exception.
        StepLimitExceeded
            if ``max_steps`` is exhausted.
        """
        if self._running:
            raise RuntimeError("kernel.run() is not reentrant")
        self._running = True
        obs = self.obs
        try:
            with obs.span("kernel.run", cat="kernel"):
                while self._app_threads_pending():
                    runnable = self._runnable()
                    if not runnable:
                        blocked = [
                            (t.name, t.waiting_reason or "?")
                            for t in self.threads
                            if t.status is Status.BLOCKED and not t.daemon
                        ]
                        raise DeadlockError(blocked)
                    if self.max_steps is not None and self.steps >= self.max_steps:
                        raise StepLimitExceeded(self.max_steps)
                    thread = self.scheduler.pick(runnable, self.steps)
                    if obs.enabled:
                        self._observed_step(thread)
                    else:
                        self._step(thread)
                self._shutdown_daemons()
        finally:
            self._running = False

    def _observed_step(self, thread: SimThread) -> None:
        """One scheduling step with per-thread counters and a step span."""
        obs = self.obs
        obs.count("kernel.steps")
        obs.count(f"kernel.steps.t{thread.tid}")
        with obs.span(
            "kernel.step", cat="kernel", tid=thread.tid, thread=thread.name
        ):
            self._step(thread)

    def _shutdown_daemons(self) -> None:
        """Throw :class:`KernelStopped` into still-live daemon threads."""
        for t in self.threads:
            if t.daemon and not t.finished:
                try:
                    t.gen.throw(KernelStopped())
                except (StopIteration, KernelStopped):
                    pass
                except Exception as exc:  # daemon crashed during cleanup
                    t.status = Status.FAILED
                    t.exception = exc
                    raise SimThreadError(t, exc)
                t.status = Status.DONE

    def _step(self, thread: SimThread) -> None:
        self.steps += 1
        self.current = thread
        try:
            if thread.throw_exc is not None:
                exc, thread.throw_exc = thread.throw_exc, None
                syscall = thread.gen.throw(exc)
            else:
                value, thread.send_value = thread.send_value, None
                syscall = thread.gen.send(value)
        except StopIteration as stop:
            self._finish(thread, Status.DONE, result=stop.value)
            if self._step_listener is not None:
                self._step_listener(thread, None)
            return
        except Exception as exc:
            self._finish(thread, Status.FAILED, exception=exc)
            raise SimThreadError(thread, exc)
        finally:
            self.current = None
        try:
            self._handle(thread, syscall)
        except SimThreadError:
            raise
        except Exception as exc:
            # misuse detected while interpreting the syscall (bad release,
            # non-syscall yield, ...): attribute it to the offending thread
            self._finish(thread, Status.FAILED, exception=exc)
            raise SimThreadError(thread, exc)
        if self._step_listener is not None:
            self._step_listener(thread, syscall)

    def _finish(self, thread: SimThread, status: Status, result=None, exception=None) -> None:
        thread.status = status
        thread.result = result
        thread.exception = exception
        for joiner in thread.joiners:
            joiner.status = Status.READY
            joiner.send_value = result
            joiner.waiting_reason = None
            self.tracer.on_join(joiner.tid, thread.tid)
        thread.joiners.clear()

    # -- syscall dispatch ---------------------------------------------------

    def _handle(self, thread: SimThread, syscall) -> None:
        if isinstance(syscall, Pass):
            return
        if isinstance(syscall, ReadSys):
            thread.send_value = syscall.cell._value
            self.tracer.on_read(thread.tid, syscall.cell)
            return
        if isinstance(syscall, WriteSys):
            cell = syscall.cell
            old = cell._value
            cell._value = syscall.value
            self.tracer.on_write(thread.tid, cell, old, syscall.value)
            if syscall.commit:
                self.tracer.on_commit(thread.tid)
            return
        if isinstance(syscall, AcquireSys):
            syscall.lock._acquire(self, thread)
            return
        if isinstance(syscall, ReleaseSys):
            syscall.lock._release(self, thread)
            if syscall.commit:
                self.tracer.on_commit(thread.tid)
            return
        if isinstance(syscall, RWBeginReadSys):
            syscall.rwlock._begin_read(self, thread)
            return
        if isinstance(syscall, RWEndReadSys):
            syscall.rwlock._end_read(self, thread)
            return
        if isinstance(syscall, RWBeginWriteSys):
            syscall.rwlock._begin_write(self, thread)
            return
        if isinstance(syscall, RWEndWriteSys):
            syscall.rwlock._end_write(self, thread)
            if syscall.commit:
                self.tracer.on_commit(thread.tid)
            return
        if isinstance(syscall, CommitSys):
            self.tracer.on_commit(thread.tid)
            return
        if isinstance(syscall, BeginCommitBlockSys):
            self.tracer.on_begin_commit_block(thread.tid)
            return
        if isinstance(syscall, EndCommitBlockSys):
            self.tracer.on_end_commit_block(thread.tid)
            if syscall.commit:
                self.tracer.on_commit(thread.tid)
            return
        if isinstance(syscall, ReplaySys):
            self.tracer.on_replay(thread.tid, syscall.tag, syscall.payload)
            if syscall.commit:
                self.tracer.on_commit(thread.tid)
            return
        if isinstance(syscall, JoinSys):
            target = syscall.thread
            if target.finished:
                thread.send_value = target.result
                self.tracer.on_join(thread.tid, target.tid)
            else:
                thread.status = Status.BLOCKED
                thread.waiting_reason = f"join({target.name})"
                target.joiners.append(thread)
            return
        if isinstance(syscall, CondWaitSys):
            syscall.cond._wait(self, thread)
            return
        if isinstance(syscall, CondNotifySys):
            syscall.cond._notify(self, thread, syscall.count)
            return
        raise TypeError(f"thread {thread.name!r} yielded a non-syscall: {syscall!r}")

    # -- helpers used by primitives ------------------------------------------

    def block(self, thread: SimThread, reason: str) -> None:
        thread.status = Status.BLOCKED
        thread.waiting_reason = reason

    def unblock(self, thread: SimThread, send_value=None) -> None:
        thread.status = Status.READY
        thread.send_value = send_value
        thread.waiting_reason = None


def run_threads(
    bodies: Iterable[Callable[..., Any]],
    seed: int = 0,
    scheduler: Optional[Scheduler] = None,
    tracer: Optional[Tracer] = None,
    max_steps: Optional[int] = None,
) -> Kernel:
    """Convenience: spawn one thread per generator function and run to completion.

    Returns the kernel so callers can inspect thread results.
    """
    kernel = Kernel(scheduler=scheduler, seed=seed, tracer=tracer, max_steps=max_steps)
    for i, body in enumerate(bodies):
        kernel.spawn(body, name=f"t{i}")
    kernel.run()
    return kernel
