"""Deterministic cooperative concurrency simulator (VYRD substrate).

See DESIGN.md: this package replaces the paper's native C#/Java threads with
generator-coroutine simulated threads scheduled by seeded, reproducible
schedulers.  Public surface:

* :class:`Kernel`, :class:`ThreadCtx`, :func:`run_threads`, :func:`with_lock`
* Syscalls are produced by primitives/cells; user code only ``yield``\\ s them.
* :class:`SharedCell`, :class:`SharedArray`, :class:`CellFactory`
* :class:`Lock`, :class:`RWLock`
* Schedulers: :class:`RandomScheduler`, :class:`RoundRobinScheduler`,
  :class:`PCTScheduler`, :class:`ReplayScheduler`
* Exploration: :func:`explore_exhaustive`, :func:`explore_swarm`, plus the
  multi-process engines :func:`parallel_exhaustive`, :func:`parallel_swarm`
"""

from .errors import (
    DeadlockError,
    KernelStopped,
    LockError,
    SimThreadError,
    SimulationError,
    StepLimitExceeded,
)
from .explore import ExplorationResult, RunRecord, explore_exhaustive, explore_swarm
from .parallel import (
    ExplorationTimeout,
    RefinementViolation,
    RemoteError,
    parallel_exhaustive,
    parallel_swarm,
    resolve_program,
)
from .reduction import ReducedReplayScheduler, StaticReducer
from .resilient import ResilientPool, RetryPolicy, TaskFailure
from .kernel import (
    Kernel,
    NullTracer,
    Pass,
    SimThread,
    Status,
    Syscall,
    ThreadCtx,
    Tracer,
    run_threads,
    with_lock,
)
from .memory import CellFactory, SharedArray, SharedCell
from .primitives import Condition, Lock, RWLock
from .schedulers import (
    PCTScheduler,
    RandomScheduler,
    ReplayScheduler,
    RoundRobinScheduler,
    Scheduler,
)

__all__ = [
    "CellFactory",
    "Condition",
    "DeadlockError",
    "ExplorationResult",
    "ExplorationTimeout",
    "Kernel",
    "KernelStopped",
    "Lock",
    "LockError",
    "NullTracer",
    "Pass",
    "PCTScheduler",
    "RandomScheduler",
    "ReplayScheduler",
    "RoundRobinScheduler",
    "RWLock",
    "ReducedReplayScheduler",
    "RefinementViolation",
    "StaticReducer",
    "RemoteError",
    "ResilientPool",
    "RetryPolicy",
    "RunRecord",
    "Scheduler",
    "TaskFailure",
    "SharedArray",
    "SharedCell",
    "SimThread",
    "SimThreadError",
    "SimulationError",
    "Status",
    "StepLimitExceeded",
    "Syscall",
    "ThreadCtx",
    "Tracer",
    "explore_exhaustive",
    "explore_swarm",
    "parallel_exhaustive",
    "parallel_swarm",
    "resolve_program",
    "run_threads",
    "with_lock",
]
