"""Synchronization primitives for simulated threads.

All primitives are *passive* objects: their methods return
:class:`~repro.concurrency.kernel.Syscall` values that the simulated thread
must ``yield``; the kernel performs the actual state transition.  This keeps
every blocking decision inside the kernel, where the scheduler (and therefore
the reproducible interleaving) lives.

* :class:`Lock` -- reentrant mutual exclusion, modelling Java ``synchronized``
  and .NET ``lock``.
* :class:`RWLock` -- a reader-writer lock modelling Boxwood's RECLAIMLOCK
  (``BEGINREAD``/``ENDREAD``/``BEGINWRITE``/``ENDWRITE`` in the paper's
  Fig. 8 pseudocode).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from .errors import LockError
from .kernel import (
    AcquireSys,
    CondNotifySys,
    CondWaitSys,
    Kernel,
    ReleaseSys,
    RWBeginReadSys,
    RWBeginWriteSys,
    RWEndReadSys,
    RWEndWriteSys,
    SimThread,
)


class Lock:
    """A reentrant lock for simulated threads.

    Usage inside a thread body::

        yield lock.acquire()
        try:
            ...
        finally:
            yield lock.release()

    ``release(commit=True)`` marks the release as the method execution's
    commit action (the paper notes the first lock release after the last
    write to ``supp(view)`` is often the right commit point).
    """

    __slots__ = ("name", "owner", "depth", "waiters")

    def __init__(self, name: str = "lock"):
        self.name = name
        self.owner: Optional[int] = None  # owning tid
        self.depth = 0
        self.waiters: deque = deque()

    # -- syscall constructors (yield these) --------------------------------

    def acquire(self) -> AcquireSys:
        return AcquireSys(self)

    def release(self, commit: bool = False) -> ReleaseSys:
        return ReleaseSys(self, commit)

    # -- kernel-side implementation -----------------------------------------

    def _acquire(self, kernel: Kernel, thread: SimThread) -> None:
        if self.owner is None:
            self.owner = thread.tid
            self.depth = 1
            kernel.tracer.on_acquire(thread.tid, self)
        elif self.owner == thread.tid:
            self.depth += 1
        else:
            kernel.block(thread, f"lock({self.name})")
            self.waiters.append(thread)

    def _release(self, kernel: Kernel, thread: SimThread) -> None:
        if self.owner != thread.tid:
            raise LockError(
                f"thread {thread.name!r} released lock {self.name!r} "
                f"owned by tid {self.owner!r}"
            )
        self.depth -= 1
        if self.depth > 0:
            return
        kernel.tracer.on_release(thread.tid, self)
        if self.waiters:
            next_thread = self.waiters.popleft()
            self.owner = next_thread.tid
            self.depth = 1
            kernel.unblock(next_thread)
            kernel.tracer.on_acquire(next_thread.tid, self)
        else:
            self.owner = None

    def held_by(self, tid: int) -> bool:
        """True if ``tid`` currently owns this lock (used in assertions)."""
        return self.owner == tid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Lock {self.name!r} owner={self.owner} depth={self.depth}>"


class RWLock:
    """A reader-writer lock with writer preference (Boxwood's RECLAIMLOCK).

    Multiple readers may hold the lock simultaneously; a writer excludes
    everyone.  Readers arriving while a writer is active or waiting are
    queued, preventing writer starvation.  Read sections are reentrant per
    thread (a thread may nest ``begin_read`` calls).
    """

    __slots__ = ("name", "readers", "writer", "read_waiters", "write_waiters")

    def __init__(self, name: str = "rwlock"):
        self.name = name
        self.readers: dict = {}  # tid -> nesting depth
        self.writer: Optional[int] = None
        self.read_waiters: deque = deque()
        self.write_waiters: deque = deque()

    # -- syscall constructors ------------------------------------------------

    def begin_read(self) -> RWBeginReadSys:
        return RWBeginReadSys(self)

    def end_read(self) -> RWEndReadSys:
        return RWEndReadSys(self)

    def begin_write(self) -> RWBeginWriteSys:
        return RWBeginWriteSys(self)

    def end_write(self, commit: bool = False) -> RWEndWriteSys:
        return RWEndWriteSys(self, commit)

    # -- kernel-side implementation -------------------------------------------

    def _begin_read(self, kernel: Kernel, thread: SimThread) -> None:
        if thread.tid in self.readers:  # reentrant read
            self.readers[thread.tid] += 1
            return
        if self.writer is None and not self.write_waiters:
            self.readers[thread.tid] = 1
            kernel.tracer.on_acquire(thread.tid, self, mode="r")
        else:
            kernel.block(thread, f"rwlock-read({self.name})")
            self.read_waiters.append(thread)

    def _end_read(self, kernel: Kernel, thread: SimThread) -> None:
        depth = self.readers.get(thread.tid)
        if depth is None:
            raise LockError(
                f"thread {thread.name!r} ended a read section of {self.name!r} "
                "it never began"
            )
        if depth > 1:
            self.readers[thread.tid] = depth - 1
            return
        del self.readers[thread.tid]
        kernel.tracer.on_release(thread.tid, self, mode="r")
        self._wake(kernel)

    def _begin_write(self, kernel: Kernel, thread: SimThread) -> None:
        if self.writer is None and not self.readers:
            self.writer = thread.tid
            kernel.tracer.on_acquire(thread.tid, self, mode="w")
        else:
            kernel.block(thread, f"rwlock-write({self.name})")
            self.write_waiters.append(thread)

    def _end_write(self, kernel: Kernel, thread: SimThread) -> None:
        if self.writer != thread.tid:
            raise LockError(
                f"thread {thread.name!r} ended a write section of {self.name!r} "
                f"owned by tid {self.writer!r}"
            )
        self.writer = None
        kernel.tracer.on_release(thread.tid, self, mode="w")
        self._wake(kernel)

    def _wake(self, kernel: Kernel) -> None:
        """Grant the lock to waiters after a release (writer preference)."""
        if self.readers or self.writer is not None:
            return
        if self.write_waiters:
            next_writer = self.write_waiters.popleft()
            self.writer = next_writer.tid
            kernel.unblock(next_writer)
            kernel.tracer.on_acquire(next_writer.tid, self, mode="w")
            return
        while self.read_waiters:
            reader = self.read_waiters.popleft()
            self.readers[reader.tid] = 1
            kernel.unblock(reader)
            kernel.tracer.on_acquire(reader.tid, self, mode="r")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RWLock {self.name!r} readers={sorted(self.readers)} "
            f"writer={self.writer}>"
        )


class Condition:
    """A monitor condition variable with Mesa semantics.

    ``wait()`` atomically releases the associated :class:`Lock` and blocks;
    a notified waiter is moved to the lock's queue and resumes only once it
    has re-acquired the lock.  As with Mesa monitors, waiters must re-check
    their predicate in a loop::

        yield lock.acquire()
        while not predicate():
            yield not_empty.wait()
        ...
        yield lock.release()

    ``wait()`` from a reentrantly-held lock (depth > 1) is rejected -- the
    monitor patterns in this repository never need it and silently dropping
    nested ownership would be a bug factory.
    """

    __slots__ = ("name", "lock", "waiters")

    def __init__(self, lock: Lock, name: str = "cond"):
        self.name = name
        self.lock = lock
        self.waiters: deque = deque()

    # -- syscall constructors ----------------------------------------------

    def wait(self) -> CondWaitSys:
        return CondWaitSys(self)

    def notify(self, count: int = 1) -> CondNotifySys:
        return CondNotifySys(self, count)

    def notify_all(self) -> CondNotifySys:
        return CondNotifySys(self, -1)

    # -- kernel-side implementation -----------------------------------------

    def _wait(self, kernel: Kernel, thread: SimThread) -> None:
        if self.lock.owner != thread.tid:
            raise LockError(
                f"thread {thread.name!r} waited on {self.name!r} without "
                f"holding lock {self.lock.name!r}"
            )
        if self.lock.depth != 1:
            raise LockError(
                f"wait on {self.name!r} with reentrant lock depth "
                f"{self.lock.depth} is not supported"
            )
        self.lock._release(kernel, thread)
        kernel.block(thread, f"cond({self.name})")
        self.waiters.append(thread)

    def _notify(self, kernel: Kernel, thread: SimThread, count: int) -> None:
        if self.lock.owner != thread.tid:
            raise LockError(
                f"thread {thread.name!r} notified {self.name!r} without "
                f"holding lock {self.lock.name!r}"
            )
        wake = len(self.waiters) if count < 0 else min(count, len(self.waiters))
        for _ in range(wake):
            waiter = self.waiters.popleft()
            # Mesa: the waiter must re-acquire the lock before resuming.
            waiter.waiting_reason = f"lock({self.lock.name})"
            self.lock.waiters.append(waiter)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Condition {self.name!r} waiters={len(self.waiters)}>"
