"""Shared memory for simulated threads.

Shared state is modelled as named :class:`SharedCell` objects.  Simulated
threads access a cell only through ``yield cell.read()`` /
``yield cell.write(value)`` syscalls, which makes every shared access an
explicit preemption point *and* gives the kernel a single place to report
writes to the VYRD tracer (the fine-grained logging level of paper
section 6.2).

Cell *names* are the stable identifiers that appear in the log
(``"A[3].elt"``, ``"cache.dirty[h7]"``...).  The checker's
:class:`repro.core.replay.ReplayState` reconstructs implementation state as a
mapping from these names to logged values, so view functions are written
against names, never against live objects.

Values stored in cells should be immutable (numbers, strings, tuples,
``bytes``, frozen dataclasses): the log records them by reference.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List

from .kernel import ReadSys, WriteSys


class SharedCell:
    """A single named shared variable.

    ``read``/``write`` return syscalls to be yielded by simulated threads.
    ``peek``/``poke`` access the value directly -- they bypass both the
    scheduler and the log, and exist for initialization and for test
    assertions *after* a run, never for use inside thread bodies.
    """

    __slots__ = ("name", "_value")

    def __init__(self, name: str, value: Any = None):
        self.name = name
        self._value = value

    def read(self) -> ReadSys:
        return ReadSys(self)

    def write(self, value: Any, commit: bool = False) -> WriteSys:
        return WriteSys(self, value, commit)

    def peek(self) -> Any:
        return self._value

    def poke(self, value: Any) -> None:
        self._value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SharedCell {self.name}={self._value!r}>"


class SharedArray:
    """A fixed-size array of shared cells named ``base[i]``.

    Supports ``len``, indexing (returning the :class:`SharedCell`) and
    iteration.  Example::

        elts = SharedArray("A.elt", 8, init=None)
        v = yield elts[3].read()
    """

    __slots__ = ("base", "cells")

    def __init__(self, base: str, size: int, init: Any = None, init_fn: Callable[[int], Any] = None):
        self.base = base
        if init_fn is not None:
            self.cells: List[SharedCell] = [
                SharedCell(f"{base}[{i}]", init_fn(i)) for i in range(size)
            ]
        else:
            self.cells = [SharedCell(f"{base}[{i}]", init) for i in range(size)]

    def __len__(self) -> int:
        return len(self.cells)

    def __getitem__(self, index: int) -> SharedCell:
        return self.cells[index]

    def __iter__(self) -> Iterator[SharedCell]:
        return iter(self.cells)

    def peek_all(self) -> list:
        """Snapshot of all values (for post-run assertions)."""
        return [cell.peek() for cell in self.cells]


class CellFactory:
    """Mints uniquely named cells under a common prefix.

    Dynamic structures (tree nodes, cache entries) allocate cells at runtime;
    the factory guarantees name uniqueness, which the replay state relies on.
    """

    __slots__ = ("prefix", "_counter")

    def __init__(self, prefix: str):
        self.prefix = prefix
        self._counter = 0

    def fresh(self, suffix: str = "", value: Any = None) -> SharedCell:
        """Return a new cell named ``prefix.suffix#<n>`` (or ``prefix#<n>``)."""
        self._counter += 1
        tag = f"{self.prefix}.{suffix}#{self._counter}" if suffix else f"{self.prefix}#{self._counter}"
        return SharedCell(tag, value)

    def named(self, name: str, value: Any = None) -> SharedCell:
        """Return a new cell with an exact (caller-guaranteed-unique) name."""
        return SharedCell(f"{self.prefix}.{name}", value)
