"""Multi-process schedule exploration: parallel swarm + frontier-sharded DFS.

The serial drivers in :mod:`repro.concurrency.explore` check one schedule at
a time, so campaign wall-clock scales 1:1 with run count.  Every run on the
deterministic substrate is independently reproducible from a seed or a
decision vector, which makes exploration embarrassingly parallel; this
module fans both drivers out across a process pool:

* :func:`parallel_swarm` -- shards the seed range into chunks dispatched to
  worker processes.  Chunk results are consumed in submission (ascending
  seed) order, so ``stop_on_failure`` reproduces the serial semantics
  exactly: the campaign ends at the lowest failing seed and outstanding
  chunks are cancelled, with the number of never-run seeds recorded on
  :attr:`ExplorationResult.skipped`.
* :func:`parallel_exhaustive` -- partitions the schedule tree by
  decision-vector prefix.  A shared frontier (owned by the coordinating
  process) holds unexplored prefixes; workers claim batches, run each prefix
  through the existing :class:`ReplayScheduler` + always-first enumeration,
  and return the *sibling prefixes* their runs discovered, which go back on
  the frontier.  Work-sharing at prefix granularity means no worker idles
  while the tree is uneven.

**Frontier protocol.**  A task for prefix ``P`` performs exactly one run:
replay ``P``, then take alternative 0 at every later decision point.  Its
trace is therefore ``P + [0, 0, ...]``.  For every depth ``d >= len(P)``
with ``n`` alternatives, the prefixes ``trace[:d] + [alt]`` for
``alt in 1..n-1`` are pushed onto the frontier.  Every generated prefix ends
in a non-zero decision, and every schedule's decision vector has a unique
such generating prefix (truncate after its last non-zero decision; the
all-zero schedule is the root's own run) -- so each schedule in the tree is
executed exactly once, with no coordination between workers.

**Program specs.**  Closures do not pickle, so parallel exploration takes a
*program source*: either a picklable callable ``program(scheduler) ->
outcome`` (a module-level function or :func:`functools.partial` thereof) or
any object with a ``resolve_program()`` method -- see
:class:`repro.harness.ProgramSpec`, which names a workload-registry program
plus its configuration and is resolved to a fresh kernel inside each worker.
Outcomes must be picklable; worker-side exceptions are shipped back as
``(type name, message)`` pairs and revived as :class:`RemoteError`.

**Canonical merge order.**  Swarm results are merged in ascending seed
order, exhaustive results in lexicographic decision-vector order -- exactly
the orders the serial drivers produce.  Parallel output is therefore
bit-identical to serial (compare with
:meth:`ExplorationResult.signature`), which is what makes the engine
trustworthy and testable; the determinism suite in
``tests/concurrency/test_parallel.py`` holds it to that.

**Fault tolerance.**  Both drivers dispatch through
:class:`~repro.concurrency.resilient.ResilientPool`: chunks get per-task
wall-clock deadlines (``timeout=``), bounded retries with exponential
backoff and seeded jitter (``max_retries=``/``backoff_base=``), and the
pool survives worker deaths (``BrokenProcessPool``) by salvaging finished
futures, rebuilding the executor and re-dispatching only the lost chunks.
Because every run is a pure function of its seed / decision vector, a
retried chunk reproduces byte-identical records, so recovery never
reorders or duplicates canonical-order merge slots: a campaign that
survived faults has the same :meth:`~ExplorationResult.signature` as one
that never saw any, with the incident trail attached as
:attr:`ExplorationResult.interruptions`.  A schedule that is *genuinely*
stuck (still hung after isolation and retries) is converted into a
diagnosable :class:`ExplorationTimeout` run record carrying the seed or
decision-vector prefix needed to replay it.  ``faults=`` accepts a
:class:`repro.faults.FaultPlan`, whose worker-targeted crash/hang/slow
injections are resolved per dispatched task -- the deterministic test
harness for all of the above.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import pickle
from collections import deque
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Any, Callable, List, Optional, Tuple

from ..obs import merge_snapshots
from .explore import (
    ExplorationResult,
    RunRecord,
    _AlwaysFirst,
    _program_metrics,
    explore_exhaustive,
    explore_swarm,
)
from .resilient import ResilientPool, RetryPolicy, TaskFailure
from .schedulers import RandomScheduler, ReplayScheduler, Scheduler


class RemoteError(Exception):
    """Surrogate for an exception raised inside a worker process.

    Arbitrary exceptions (kernel errors holding simulated threads, refinement
    failures holding checker state) are not reliably picklable, so workers
    ship failures home as ``(type name, message, details)`` and the
    coordinator revives them as this class.  ``remote_type`` preserves the
    original exception's type name for campaign-signature comparison against
    in-process runs.
    """

    def __init__(self, remote_type: str, message: str, details=None):
        super().__init__(message)
        self.remote_type = remote_type
        self.details = details

    def __reduce__(self):
        return (RemoteError, (self.remote_type, str(self), self.details))


class RefinementViolation(Exception):
    """Picklable failure raised by spec-driven programs on a refinement miss.

    Carries the outcome summary as the message and, when available, the
    outcome's ``to_dict()`` form in ``details`` so violation reports survive
    the trip back from a worker process.
    """

    def __init__(self, message: str, details: Optional[dict] = None):
        super().__init__(message)
        self.details = details

    def __reduce__(self):
        return (RefinementViolation, (str(self), self.details))


class ExplorationTimeout(Exception):
    """A schedule never completed: hung past the watchdog and every retry.

    The explorers convert a terminally stuck task into a failed
    :class:`~repro.concurrency.explore.RunRecord` carrying this error
    instead of wedging the campaign.  ``schedule`` is the replay handle --
    the swarm seed or the exhaustive decision-vector prefix -- so the hang
    can be reproduced in isolation (e.g. with a debugger attached).
    """

    def __init__(self, schedule, kind: str = "timeout", attempts: int = 0,
                 detail: str = ""):
        self.schedule = schedule
        self.kind = kind
        self.attempts = attempts
        self.detail = detail
        super().__init__(
            f"schedule {schedule!r} abandoned ({kind} after "
            f"{attempts} attempt(s)){': ' + detail if detail else ''}"
        )

    def __reduce__(self):
        return (
            ExplorationTimeout,
            (self.schedule, self.kind, self.attempts, self.detail),
        )


def resolve_program(source) -> Callable[[Scheduler], Any]:
    """Turn a program source into the ``program(scheduler)`` callable.

    Accepts any object with a ``resolve_program()`` method (e.g.
    :class:`repro.harness.ProgramSpec`) or a callable used as-is.  For
    multi-process exploration the *source* must be picklable; resolution
    happens inside each worker, so the resolved callable itself may close
    over fresh per-process state.
    """
    resolver = getattr(source, "resolve_program", None)
    if resolver is not None:
        return resolver()
    if callable(source):
        return source
    raise TypeError(
        f"not an explorable program: {source!r} (expected a callable or an "
        f"object with a resolve_program() method)"
    )


class _OncePickledSource:
    """Campaign-lifetime cache of the pickled program source.

    :class:`ProcessPoolExecutor` pickles the worker partial -- program
    source included -- for **every** dispatched task, so a campaign of N
    chunks walked the spec's object graph N times.  This wrapper serializes
    the source exactly once, up front, and replays the cached bytes into
    each task pickle (``__reduce__`` hands pickle the precomputed payload);
    workers transparently unpickle the original source object.  Also a
    fail-fast: an unpicklable source now raises at campaign start, not
    inside the pool.
    """

    __slots__ = ("source", "_payload")

    def __init__(self, source):
        self.source = source
        self._payload = pickle.dumps(source, protocol=pickle.HIGHEST_PROTOCOL)

    def __reduce__(self):
        return (pickle.loads, (self._payload,))

    def resolve_program(self):
        return resolve_program(self.source)


def _resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None or jobs <= 0:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux fallback
            return max(1, os.cpu_count() or 1)
    return jobs


def _mp_context(name: Optional[str] = None):
    """Prefer ``fork`` (cheap workers that inherit loaded modules)."""
    if name is not None:
        return multiprocessing.get_context(name)
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _wire_error(exc: BaseException) -> Tuple[str, str, Optional[dict]]:
    details = getattr(exc, "details", None)
    if not isinstance(details, dict):
        details = None
    return (type(exc).__name__, str(exc), details)


def _revive_error(wire):
    if wire is None:
        return None
    if isinstance(wire, BaseException):
        return wire  # synthesized coordinator-side (e.g. ExplorationTimeout)
    return RemoteError(*wire)


def _fold_pool_counters(metrics: Optional[dict], events: List[dict]) -> Optional[dict]:
    """Count pool incidents (retries, rebuilds, hang kills) into ``metrics``.

    ``pool.*`` counters reflect infrastructure luck, not the program under
    test: a fault-free campaign has none, so the deterministic
    serial==parallel metrics guarantee is untouched.
    """
    if metrics is None or not events:
        return metrics
    counters = metrics["counters"]
    for event in events:
        name = "pool.events." + str(event.get("kind", "unknown"))
        counters[name] = counters.get(name, 0) + 1
    return metrics


def _retry_policy(timeout, max_retries, backoff_base, seed) -> RetryPolicy:
    return RetryPolicy(
        max_retries=max_retries,
        timeout=timeout,
        backoff_base=backoff_base,
        seed=seed,
    )


def _fault_decorator(faults):
    """Adapt a :class:`repro.faults.FaultPlan` to the pool's decorate hook.

    Duck-typed so this module needs no import of :mod:`repro.faults`: any
    object with ``task_faults(serial, attempt) -> picklable | None`` works.
    The returned payload travels to the worker, which applies it at task
    start (crash / hang / slow-down).
    """
    if faults is None:
        return None
    return lambda payload, serial, attempt: faults.task_faults(serial, attempt)


# ---------------------------------------------------------------------------
# Parallel swarm
# ---------------------------------------------------------------------------


def _swarm_chunk(source, stop_on_failure, scheduler_factory, seeds, inject=None):
    """Worker: run one chunk of seeds, returning picklable wire results.

    The wire shape is ``(records, metrics_snapshot)``: the per-seed records
    plus the chunk recorder's deterministic counter snapshot (``None`` when
    the program source does not carry metrics).

    ``inject`` is the fault-injection hook resolved for this dispatch (see
    :func:`_fault_decorator`); applied before any real work so a planned
    crash/hang takes the whole chunk down, exactly like a real worker death.
    """
    if inject is not None:
        inject.apply()
    program = resolve_program(source)
    make = scheduler_factory or RandomScheduler
    records = []
    for seed in seeds:
        outcome = error = None
        try:
            outcome = program(make(seed))
        except Exception as exc:
            error = _wire_error(exc)
        records.append((seed, outcome, error))
        if error is not None and stop_on_failure:
            break
    return records, _program_metrics(program)


def _split_seed_chunk(seeds) -> Optional[List[List[int]]]:
    return [[seed] for seed in seeds] if len(seeds) > 1 else None


def _concat_chunks(parts: List[tuple]) -> tuple:
    records = [record for part in parts for record in part[0]]
    return records, merge_snapshots(part[1] for part in parts)


def _swarm_give_up(seeds, failure: TaskFailure) -> tuple:
    return [
        (seed, None, ExplorationTimeout(
            seed, kind=failure.kind, attempts=failure.attempts,
            detail=failure.message,
        ))
        for seed in seeds
    ], None


def parallel_swarm(
    program,
    num_runs: int = 100,
    base_seed: int = 0,
    stop_on_failure: bool = False,
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    scheduler_factory: Optional[Callable[[int], Scheduler]] = None,
    mp_context: Optional[str] = None,
    timeout: Optional[float] = None,
    max_retries: int = 2,
    backoff_base: float = 0.05,
    faults=None,
) -> ExplorationResult:
    """Multi-process :func:`explore_swarm`: shard the seed range over a pool.

    ``program`` is a program *source* (see :func:`resolve_program`); it and
    ``scheduler_factory`` (if given) must be picklable.  ``jobs=None`` uses
    every available CPU; ``jobs<=1`` runs serially in-process.  Results come
    back in ascending seed order, identical to the serial driver's.

    ``timeout``/``max_retries``/``backoff_base`` configure the fault-
    tolerance layer (see the module docstring); ``faults`` injects a
    :class:`repro.faults.FaultPlan` for deterministic failure testing.
    Recovered incidents are reported on the result's ``interruptions``.
    """
    jobs = _resolve_jobs(jobs)
    if jobs <= 1:
        return explore_swarm(
            resolve_program(program),
            num_runs=num_runs,
            base_seed=base_seed,
            stop_on_failure=stop_on_failure,
            scheduler_factory=scheduler_factory,
        )
    program = _OncePickledSource(program)
    seeds = [base_seed + i for i in range(num_runs)]
    if chunk_size is None:
        # ~4 chunks per worker balances load against per-task dispatch cost.
        chunk_size = max(1, -(-num_runs // (jobs * 4)))
    chunks = [seeds[i : i + chunk_size] for i in range(0, num_runs, chunk_size)]
    result = ExplorationResult(requested=num_runs)
    context = _mp_context(mp_context)
    pool = ResilientPool(
        functools.partial(_swarm_chunk, program, stop_on_failure, scheduler_factory),
        make_executor=lambda: ProcessPoolExecutor(
            max_workers=jobs, mp_context=context
        ),
        policy=_retry_policy(timeout, max_retries, backoff_base, base_seed),
        split=_split_seed_chunk,
        combine=_concat_chunks,
        give_up=_swarm_give_up,
        decorate=_fault_decorator(faults),
    )
    stopped = False
    snapshots: List[Optional[dict]] = []
    try:
        for chunk in chunks:
            pool.submit(chunk)
        # Consume in submission order: chunks are contiguous ascending seed
        # ranges, so the merged record list is already canonically sorted and
        # the first failure seen is the lowest failing seed -- exactly the
        # run the serial driver would have stopped at.  Retried chunks land
        # in their original slot (the pool keys results by submission
        # ordinal), so recovery cannot perturb the order.
        buffered = {}
        for key in range(len(chunks)):
            if stopped:
                break
            while key not in buffered:
                done_key, (records, snapshot) = pool.next_completed()
                buffered[done_key] = records
                snapshots.append(snapshot)
            for seed, outcome, error in buffered.pop(key):
                record = RunRecord(
                    schedule=seed, outcome=outcome, error=_revive_error(error)
                )
                result.runs.append(record)
                if record.failed and stop_on_failure:
                    stopped = True
                    break
    except (BrokenExecutor, OSError) as exc:
        # Unrecoverable infrastructure collapse (executor cannot even be
        # rebuilt): keep every merged outcome and attach the failure rather
        # than losing the campaign.
        result.interruptions.append(
            {"kind": "fatal", "detail": repr(exc), "task": None}
        )
    finally:
        pool.shutdown()
    result.interruptions.extend(pool.events)
    result.skipped = num_runs - len(result.runs)
    result.metrics = _fold_pool_counters(merge_snapshots(snapshots), pool.events)
    return result


# ---------------------------------------------------------------------------
# Parallel exhaustive DFS
# ---------------------------------------------------------------------------


def _exhaustive_batch(source, prefixes, inject=None):
    """Worker: expand a batch of claimed prefixes (one run each).

    Returns ``(records, discovered, metrics_snapshot)`` where each record is
    ``(decision_vector, outcome, wire_error)``, ``discovered`` lists the
    sibling prefixes found below each prefix (see the frontier protocol in
    the module docstring), and ``metrics_snapshot`` is the chunk recorder's
    deterministic counter snapshot (``None`` without metrics).
    """
    if inject is not None:
        inject.apply()
    program = resolve_program(source)
    records = []
    discovered: List[List[int]] = []
    for prefix in prefixes:
        scheduler = ReplayScheduler(decisions=list(prefix), fallback=_AlwaysFirst())
        outcome = error = None
        try:
            outcome = program(scheduler)
        except Exception as exc:
            error = _wire_error(exc)
        trace = scheduler.trace
        indices = [index for index, _ in trace]
        records.append((indices, outcome, error))
        for depth in range(len(prefix), len(trace)):
            chosen, num_choices = trace[depth]
            for alt in range(chosen + 1, num_choices):
                discovered.append(indices[:depth] + [alt])
    return records, discovered, _program_metrics(program)


def _reduced_exhaustive_batch(source, reducer, entries, inject=None):
    """Worker: expand claimed ``(prefix, sleep)`` frontier entries.

    The sleep-set variant of :func:`_exhaustive_batch` (see
    :mod:`repro.concurrency.reduction`): each entry replays its prefix under
    its inherited sleep set, and sibling generation both emits the surviving
    ``(prefix, sleep)`` entries and counts the pruned subtrees.  Wire shape:
    ``(records, discovered, pruned, metrics_snapshot)``.  Every sleep set is
    computed by the worker that generated the entry, so the frontier needs
    no more coordination than the unreduced one.
    """
    from .reduction import ReducedReplayScheduler

    if inject is not None:
        inject.apply()
    program = resolve_program(source)
    records = []
    discovered: List[tuple] = []
    pruned = 0
    for prefix, sleep in entries:
        scheduler = ReducedReplayScheduler(
            decisions=list(prefix), sleep=dict(sleep), reducer=reducer
        )
        outcome = error = None
        try:
            outcome = program(scheduler)
        except Exception as exc:
            error = _wire_error(exc)
        indices = [index for index, _ in scheduler.trace]
        records.append((indices, outcome, error))
        entries_found, newly_pruned = scheduler.siblings()
        discovered.extend(entries_found)
        pruned += newly_pruned
    return records, discovered, pruned, _program_metrics(program)


def _split_prefix_batch(prefixes) -> Optional[List[list]]:
    return [[prefix] for prefix in prefixes] if len(prefixes) > 1 else None


def _combine_batches(parts: List[tuple]) -> tuple:
    records = [record for part in parts for record in part[0]]
    discovered = [prefix for part in parts for prefix in part[1]]
    return records, discovered, merge_snapshots(part[2] for part in parts)


def _exhaustive_give_up(prefixes, failure: TaskFailure) -> tuple:
    records = [
        (list(prefix), None, ExplorationTimeout(
            list(prefix), kind=failure.kind, attempts=failure.attempts,
            detail=failure.message,
        ))
        for prefix in prefixes
    ]
    # The subtree below an abandoned prefix is unexplored: no siblings to
    # report, and the driver marks the campaign non-exhausted.
    return records, [], None


def _combine_reduced_batches(parts: List[tuple]) -> tuple:
    records = [record for part in parts for record in part[0]]
    discovered = [entry for part in parts for entry in part[1]]
    pruned = sum(part[2] for part in parts)
    return records, discovered, pruned, merge_snapshots(part[3] for part in parts)


def _reduced_give_up(entries, failure: TaskFailure) -> tuple:
    records = [
        (list(prefix), None, ExplorationTimeout(
            list(prefix), kind=failure.kind, attempts=failure.attempts,
            detail=failure.message,
        ))
        for prefix, _sleep in entries
    ]
    return records, [], 0, None


def parallel_exhaustive(
    program,
    max_runs: int = 10_000,
    stop_on_failure: bool = False,
    jobs: Optional[int] = None,
    chunk_size: int = 16,
    mp_context: Optional[str] = None,
    timeout: Optional[float] = None,
    max_retries: int = 2,
    backoff_base: float = 0.05,
    faults=None,
    reducer=None,
) -> ExplorationResult:
    """Multi-process :func:`explore_exhaustive` via frontier sharding.

    Covers exactly the schedules the serial DFS covers; with a budget large
    enough to exhaust the space, the merged result (sorted lexicographically
    by decision vector) is identical to the serial one.  Under a binding
    ``max_runs`` budget the two engines visit *different* subsets of the
    tree (DFS order vs. frontier order), so budget-limited results are only
    set-comparable to themselves.  ``stop_on_failure`` stops dispatching new
    work once any failure is observed, drains in-flight batches, and
    truncates the canonical ordering after its first failure.

    ``timeout``/``max_retries``/``backoff_base``/``faults`` configure the
    fault-tolerance layer exactly as for :func:`parallel_swarm`.  A prefix
    that stays hung through isolation and retries becomes a failed record
    with an :class:`ExplorationTimeout` error, and the campaign is marked
    non-exhausted (its subtree was never enumerated).

    ``reducer`` (a picklable
    :class:`repro.concurrency.reduction.StaticReducer`) switches the
    frontier to sleep-set entries ``(prefix, sleep)``: statically redundant
    sibling subtrees are counted on ``result.pruned`` instead of dispatched.
    The reduced parallel campaign covers exactly the schedules the reduced
    serial one does.
    """
    jobs = _resolve_jobs(jobs)
    if jobs <= 1:
        return explore_exhaustive(
            resolve_program(program),
            max_runs=max_runs,
            stop_on_failure=stop_on_failure,
            reducer=reducer,
        )
    program = _OncePickledSource(program)
    reduced = reducer is not None
    frontier: deque = deque([([], {})] if reduced else [[]])
    runs: List[RunRecord] = []
    dispatched = 0
    pruned = 0
    failure_seen = False
    abandoned = False
    context = _mp_context(mp_context)
    pool = ResilientPool(
        functools.partial(_reduced_exhaustive_batch, program, reducer)
        if reduced
        else functools.partial(_exhaustive_batch, program),
        make_executor=lambda: ProcessPoolExecutor(
            max_workers=jobs, mp_context=context
        ),
        policy=_retry_policy(timeout, max_retries, backoff_base, max_runs),
        split=_split_prefix_batch,
        combine=_combine_reduced_batches if reduced else _combine_batches,
        give_up=_reduced_give_up if reduced else _exhaustive_give_up,
        decorate=_fault_decorator(faults),
    )
    interruptions: List[dict] = []
    snapshots: List[Optional[dict]] = []
    try:
        while True:
            while (
                frontier
                and not (stop_on_failure and failure_seen)
                and pool.in_flight < jobs * 2
                and dispatched < max_runs
            ):
                batch = []
                while frontier and len(batch) < chunk_size and dispatched < max_runs:
                    batch.append(frontier.popleft())
                    dispatched += 1
                pool.submit(batch)
            if not pool.has_pending:
                break
            _key, payload = pool.next_completed()
            if reduced:
                records, discovered, newly_pruned, snapshot = payload
                pruned += newly_pruned
            else:
                records, discovered, snapshot = payload
            snapshots.append(snapshot)
            for schedule, outcome, error in records:
                revived = _revive_error(error)
                record = RunRecord(
                    schedule=schedule, outcome=outcome, error=revived
                )
                runs.append(record)
                if record.failed:
                    failure_seen = True
                if isinstance(revived, ExplorationTimeout):
                    abandoned = True
            frontier.extend(discovered)
    except (BrokenExecutor, OSError) as exc:
        interruptions.append({"kind": "fatal", "detail": repr(exc), "task": None})
        abandoned = True
    finally:
        pool.shutdown()
    budget_hit = dispatched >= max_runs and bool(frontier)
    runs.sort(key=lambda record: tuple(record.schedule))
    result = ExplorationResult(runs=runs)
    result.interruptions = interruptions + pool.events
    result.metrics = _fold_pool_counters(merge_snapshots(snapshots), pool.events)
    if stop_on_failure and failure_seen:
        for position, record in enumerate(runs):
            if record.failed:
                del runs[position + 1 :]
                break
        result.exhausted = False
    else:
        result.exhausted = not frontier and not budget_hit and not abandoned
    if reduced:
        result.pruned = pruned
        result.skipped = pruned
        result.requested = len(result.runs) + pruned
    return result
