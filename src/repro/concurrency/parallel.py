"""Multi-process schedule exploration: parallel swarm + frontier-sharded DFS.

The serial drivers in :mod:`repro.concurrency.explore` check one schedule at
a time, so campaign wall-clock scales 1:1 with run count.  Every run on the
deterministic substrate is independently reproducible from a seed or a
decision vector, which makes exploration embarrassingly parallel; this
module fans both drivers out across a process pool:

* :func:`parallel_swarm` -- shards the seed range into chunks dispatched to
  worker processes.  Chunk results are consumed in submission (ascending
  seed) order, so ``stop_on_failure`` reproduces the serial semantics
  exactly: the campaign ends at the lowest failing seed and outstanding
  chunks are cancelled, with the number of never-run seeds recorded on
  :attr:`ExplorationResult.skipped`.
* :func:`parallel_exhaustive` -- partitions the schedule tree by
  decision-vector prefix.  A shared frontier (owned by the coordinating
  process) holds unexplored prefixes; workers claim batches, run each prefix
  through the existing :class:`ReplayScheduler` + always-first enumeration,
  and return the *sibling prefixes* their runs discovered, which go back on
  the frontier.  Work-sharing at prefix granularity means no worker idles
  while the tree is uneven.

**Frontier protocol.**  A task for prefix ``P`` performs exactly one run:
replay ``P``, then take alternative 0 at every later decision point.  Its
trace is therefore ``P + [0, 0, ...]``.  For every depth ``d >= len(P)``
with ``n`` alternatives, the prefixes ``trace[:d] + [alt]`` for
``alt in 1..n-1`` are pushed onto the frontier.  Every generated prefix ends
in a non-zero decision, and every schedule's decision vector has a unique
such generating prefix (truncate after its last non-zero decision; the
all-zero schedule is the root's own run) -- so each schedule in the tree is
executed exactly once, with no coordination between workers.

**Program specs.**  Closures do not pickle, so parallel exploration takes a
*program source*: either a picklable callable ``program(scheduler) ->
outcome`` (a module-level function or :func:`functools.partial` thereof) or
any object with a ``resolve_program()`` method -- see
:class:`repro.harness.ProgramSpec`, which names a workload-registry program
plus its configuration and is resolved to a fresh kernel inside each worker.
Outcomes must be picklable; worker-side exceptions are shipped back as
``(type name, message)`` pairs and revived as :class:`RemoteError`.

**Canonical merge order.**  Swarm results are merged in ascending seed
order, exhaustive results in lexicographic decision-vector order -- exactly
the orders the serial drivers produce.  Parallel output is therefore
bit-identical to serial (compare with
:meth:`ExplorationResult.signature`), which is what makes the engine
trustworthy and testable; the determinism suite in
``tests/concurrency/test_parallel.py`` holds it to that.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, List, Optional, Sequence, Tuple

from .explore import (
    ExplorationResult,
    RunRecord,
    _AlwaysFirst,
    explore_exhaustive,
    explore_swarm,
)
from .schedulers import RandomScheduler, ReplayScheduler, Scheduler


class RemoteError(Exception):
    """Surrogate for an exception raised inside a worker process.

    Arbitrary exceptions (kernel errors holding simulated threads, refinement
    failures holding checker state) are not reliably picklable, so workers
    ship failures home as ``(type name, message, details)`` and the
    coordinator revives them as this class.  ``remote_type`` preserves the
    original exception's type name for campaign-signature comparison against
    in-process runs.
    """

    def __init__(self, remote_type: str, message: str, details=None):
        super().__init__(message)
        self.remote_type = remote_type
        self.details = details

    def __reduce__(self):
        return (RemoteError, (self.remote_type, str(self), self.details))


class RefinementViolation(Exception):
    """Picklable failure raised by spec-driven programs on a refinement miss.

    Carries the outcome summary as the message and, when available, the
    outcome's ``to_dict()`` form in ``details`` so violation reports survive
    the trip back from a worker process.
    """

    def __init__(self, message: str, details: Optional[dict] = None):
        super().__init__(message)
        self.details = details

    def __reduce__(self):
        return (RefinementViolation, (str(self), self.details))


def resolve_program(source) -> Callable[[Scheduler], Any]:
    """Turn a program source into the ``program(scheduler)`` callable.

    Accepts any object with a ``resolve_program()`` method (e.g.
    :class:`repro.harness.ProgramSpec`) or a callable used as-is.  For
    multi-process exploration the *source* must be picklable; resolution
    happens inside each worker, so the resolved callable itself may close
    over fresh per-process state.
    """
    resolver = getattr(source, "resolve_program", None)
    if resolver is not None:
        return resolver()
    if callable(source):
        return source
    raise TypeError(
        f"not an explorable program: {source!r} (expected a callable or an "
        f"object with a resolve_program() method)"
    )


def _resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None or jobs <= 0:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux fallback
            return max(1, os.cpu_count() or 1)
    return jobs


def _mp_context(name: Optional[str] = None):
    """Prefer ``fork`` (cheap workers that inherit loaded modules)."""
    if name is not None:
        return multiprocessing.get_context(name)
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _wire_error(exc: BaseException) -> Tuple[str, str, Optional[dict]]:
    details = getattr(exc, "details", None)
    if not isinstance(details, dict):
        details = None
    return (type(exc).__name__, str(exc), details)


def _revive_error(wire) -> Optional[RemoteError]:
    if wire is None:
        return None
    return RemoteError(*wire)


# ---------------------------------------------------------------------------
# Parallel swarm
# ---------------------------------------------------------------------------


def _swarm_chunk(source, seeds, stop_on_failure, scheduler_factory):
    """Worker: run one chunk of seeds, returning picklable wire records."""
    program = resolve_program(source)
    make = scheduler_factory or RandomScheduler
    records = []
    for seed in seeds:
        outcome = error = None
        try:
            outcome = program(make(seed))
        except Exception as exc:
            error = _wire_error(exc)
        records.append((seed, outcome, error))
        if error is not None and stop_on_failure:
            break
    return records


def parallel_swarm(
    program,
    num_runs: int = 100,
    base_seed: int = 0,
    stop_on_failure: bool = False,
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    scheduler_factory: Optional[Callable[[int], Scheduler]] = None,
    mp_context: Optional[str] = None,
) -> ExplorationResult:
    """Multi-process :func:`explore_swarm`: shard the seed range over a pool.

    ``program`` is a program *source* (see :func:`resolve_program`); it and
    ``scheduler_factory`` (if given) must be picklable.  ``jobs=None`` uses
    every available CPU; ``jobs<=1`` runs serially in-process.  Results come
    back in ascending seed order, identical to the serial driver's.
    """
    jobs = _resolve_jobs(jobs)
    if jobs <= 1:
        return explore_swarm(
            resolve_program(program),
            num_runs=num_runs,
            base_seed=base_seed,
            stop_on_failure=stop_on_failure,
            scheduler_factory=scheduler_factory,
        )
    seeds = [base_seed + i for i in range(num_runs)]
    if chunk_size is None:
        # ~4 chunks per worker balances load against per-task dispatch cost.
        chunk_size = max(1, -(-num_runs // (jobs * 4)))
    result = ExplorationResult(requested=num_runs)
    stopped = False
    executor = ProcessPoolExecutor(max_workers=jobs, mp_context=_mp_context(mp_context))
    try:
        futures = [
            executor.submit(
                _swarm_chunk,
                program,
                seeds[i : i + chunk_size],
                stop_on_failure,
                scheduler_factory,
            )
            for i in range(0, num_runs, chunk_size)
        ]
        # Consume in submission order: chunks are contiguous ascending seed
        # ranges, so the merged record list is already canonically sorted and
        # the first failure seen is the lowest failing seed -- exactly the
        # run the serial driver would have stopped at.
        for future in futures:
            if stopped:
                future.cancel()
                continue
            for seed, outcome, error in future.result():
                record = RunRecord(
                    schedule=seed, outcome=outcome, error=_revive_error(error)
                )
                result.runs.append(record)
                if record.failed and stop_on_failure:
                    stopped = True
                    break
    finally:
        executor.shutdown(wait=True, cancel_futures=True)
    result.skipped = num_runs - len(result.runs)
    return result


# ---------------------------------------------------------------------------
# Parallel exhaustive DFS
# ---------------------------------------------------------------------------


def _exhaustive_batch(source, prefixes):
    """Worker: expand a batch of claimed prefixes (one run each).

    Returns ``(records, discovered)`` where each record is
    ``(decision_vector, outcome, wire_error)`` and ``discovered`` lists the
    sibling prefixes found below each prefix (see the frontier protocol in
    the module docstring).
    """
    program = resolve_program(source)
    records = []
    discovered: List[List[int]] = []
    for prefix in prefixes:
        scheduler = ReplayScheduler(decisions=list(prefix), fallback=_AlwaysFirst())
        outcome = error = None
        try:
            outcome = program(scheduler)
        except Exception as exc:
            error = _wire_error(exc)
        trace = scheduler.trace
        indices = [index for index, _ in trace]
        records.append((indices, outcome, error))
        for depth in range(len(prefix), len(trace)):
            chosen, num_choices = trace[depth]
            for alt in range(chosen + 1, num_choices):
                discovered.append(indices[:depth] + [alt])
    return records, discovered


def parallel_exhaustive(
    program,
    max_runs: int = 10_000,
    stop_on_failure: bool = False,
    jobs: Optional[int] = None,
    chunk_size: int = 16,
    mp_context: Optional[str] = None,
) -> ExplorationResult:
    """Multi-process :func:`explore_exhaustive` via frontier sharding.

    Covers exactly the schedules the serial DFS covers; with a budget large
    enough to exhaust the space, the merged result (sorted lexicographically
    by decision vector) is identical to the serial one.  Under a binding
    ``max_runs`` budget the two engines visit *different* subsets of the
    tree (DFS order vs. frontier order), so budget-limited results are only
    set-comparable to themselves.  ``stop_on_failure`` stops dispatching new
    work once any failure is observed, drains in-flight batches, and
    truncates the canonical ordering after its first failure.
    """
    jobs = _resolve_jobs(jobs)
    if jobs <= 1:
        return explore_exhaustive(
            resolve_program(program),
            max_runs=max_runs,
            stop_on_failure=stop_on_failure,
        )
    frontier: deque = deque([[]])
    runs: List[RunRecord] = []
    pending = set()
    dispatched = 0
    failure_seen = False
    executor = ProcessPoolExecutor(max_workers=jobs, mp_context=_mp_context(mp_context))
    try:
        while True:
            while (
                frontier
                and not (stop_on_failure and failure_seen)
                and len(pending) < jobs * 2
                and dispatched < max_runs
            ):
                batch = []
                while frontier and len(batch) < chunk_size and dispatched < max_runs:
                    batch.append(frontier.popleft())
                    dispatched += 1
                pending.add(executor.submit(_exhaustive_batch, program, batch))
            if not pending:
                break
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                records, discovered = future.result()
                for schedule, outcome, error in records:
                    record = RunRecord(
                        schedule=schedule,
                        outcome=outcome,
                        error=_revive_error(error),
                    )
                    runs.append(record)
                    if record.failed:
                        failure_seen = True
                frontier.extend(discovered)
    finally:
        executor.shutdown(wait=True, cancel_futures=True)
    budget_hit = dispatched >= max_runs and bool(frontier)
    runs.sort(key=lambda record: tuple(record.schedule))
    result = ExplorationResult(runs=runs)
    if stop_on_failure and failure_seen:
        for position, record in enumerate(runs):
            if record.failed:
                del runs[position + 1 :]
                break
        result.exhausted = False
    else:
        result.exhausted = not frontier and not budget_hit
    return result
