"""Bounded FIFO queue substrate (extension beyond the paper's benchmarks).

Exercises condition-variable-based blocking operations and a
duplicate-delivery bug (``buggy_nonatomic_dequeue=True``).
"""

from .queue import EMPTY, BoundedQueue, queue_view
from .spec import QueueSpec

__all__ = ["BoundedQueue", "EMPTY", "QueueSpec", "queue_view"]
