"""Specification of the bounded FIFO queue."""

from __future__ import annotations

from collections import deque

from ..core import VIEW_ABSENT, SpecReject, Specification, mutator, observer
from .queue import EMPTY


class QueueSpec(Specification):
    """A bounded FIFO: blocking operations always succeed (their waiting is
    invisible to the spec -- they commit only once the slot/item exists);
    ``try_`` variants report full/empty deterministically at their commit."""

    tracks_view_delta = True

    def __init__(self, capacity: int = 4):
        self.capacity = capacity
        self.items: deque = deque()

    @mutator
    def enqueue(self, item, *, result):
        if result is not None:
            raise SpecReject(f"enqueue returns nothing, got {result!r}")
        if len(self.items) >= self.capacity:
            raise SpecReject("enqueue committed on a full queue")
        self.items.append(item)
        self._touch("queue")

    @mutator
    def dequeue(self, *, result):
        if not self.items:
            raise SpecReject("dequeue committed on an empty queue")
        front = self.items[0]
        if result != front:
            raise SpecReject(
                f"dequeue returned {result!r} but the front of the queue "
                f"is {front!r} (duplicate or out-of-order delivery)"
            )
        self.items.popleft()
        self._touch("queue")

    @mutator
    def try_enqueue(self, item, *, result):
        if result is True:
            if len(self.items) >= self.capacity:
                raise SpecReject("try_enqueue succeeded on a full queue")
            self.items.append(item)
            self._touch("queue")
        elif result is False:
            if len(self.items) < self.capacity:
                raise SpecReject("try_enqueue failed with room available")
        else:
            raise SpecReject(f"try_enqueue must return a bool, got {result!r}")

    @mutator
    def try_dequeue(self, *, result):
        if result == EMPTY:
            if self.items:
                raise SpecReject("try_dequeue reported empty on a non-empty queue")
            return
        if not self.items:
            raise SpecReject("try_dequeue returned an item from an empty queue")
        front = self.items[0]
        if result != front:
            raise SpecReject(
                f"try_dequeue returned {result!r} but the front is {front!r}"
            )
        self.items.popleft()
        self._touch("queue")

    def candidate_results(self, method, args):
        """Plausible returns for incomplete operations in recovered logs;
        the ``try_dequeue`` candidates are state-dependent (the current
        front is the only item it could have taken)."""
        if method == "enqueue":
            return (None,)
        if method == "dequeue":
            return (self.items[0],) if self.items else ()
        if method == "try_enqueue":
            return (True, False)
        if method == "try_dequeue":
            front = (self.items[0],) if self.items else ()
            return (EMPTY, *front)
        return None

    @observer
    def size_of(self):
        return len(self.items)

    def view(self) -> dict:
        return {"queue": tuple(self.items)}

    def view_at(self, key):
        return tuple(self.items) if key == "queue" else VIEW_ABSENT

    def describe(self) -> str:
        return f"queue = {list(self.items)!r}"
