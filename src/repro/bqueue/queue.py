"""A monitor-based bounded FIFO queue (extension substrate).

Beyond the paper's own benchmarks, this substrate exercises the parts of the
framework the others do not: condition variables (blocking operations that
are *expected* to overlap), and a bug whose I/O manifestation is a duplicate
delivery -- a pattern common in real queues.

Layout: a ring buffer of ``capacity`` slots with ``q.head`` / ``q.tail`` /
``q.size`` counters, one monitor lock and two conditions (``not_empty``,
``not_full``).  The commit action of both mutators is the ``q.size`` write
-- the single update that makes the insertion/removal visible to the other
side of the monitor.

The seeded bug (``buggy_nonatomic_dequeue=True``): the dequeue reads the
front item, **releases the monitor**, and re-acquires it to advance the
head without re-validating -- two concurrent dequeues can return the same
item while the head advances past a never-delivered one.  The spec rejects
the second delivery at its commit (I/O refinement), and the view comparison
sees the lost element immediately.
"""

from __future__ import annotations


from ..concurrency import Condition, Lock, SharedCell, ThreadCtx
from ..core import FunctionView, operation

EMPTY = "<empty>"


class BoundedQueue:
    """Blocking bounded FIFO queue with non-blocking ``try_`` variants."""

    def __init__(self, capacity: int = 4, buggy_nonatomic_dequeue: bool = False):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.buggy_nonatomic_dequeue = buggy_nonatomic_dequeue
        self.lock = Lock("q")
        self.not_empty = Condition(self.lock, "q.not_empty")
        self.not_full = Condition(self.lock, "q.not_full")
        self.buf = [SharedCell(f"q.buf[{i}]", None) for i in range(capacity)]
        self.head = SharedCell("q.head", 0)
        self.tail = SharedCell("q.tail", 0)
        self.size = SharedCell("q.size", 0)

    # -- core paths (caller holds the monitor) --------------------------------

    def _enqueue_locked(self, ctx: ThreadCtx, item):
        tail = yield self.tail.read()
        size = yield self.size.read()
        yield self.buf[tail].write(item)
        yield self.tail.write((tail + 1) % self.capacity)
        yield self.size.write(size + 1, commit=True)
        yield self.not_empty.notify()

    def _dequeue_locked(self, ctx: ThreadCtx):
        head = yield self.head.read()
        item = yield self.buf[head].read()
        if self.buggy_nonatomic_dequeue:
            # BUG: the monitor is released between reading the front item
            # and removing it; a concurrent dequeue can read the same item.
            yield self.lock.release()
            yield ctx.checkpoint()
            yield self.lock.acquire()
        size = yield self.size.read()
        yield self.buf[head].write(None)
        yield self.head.write((head + 1) % self.capacity)
        yield self.size.write(size - 1, commit=True)
        yield self.not_full.notify()
        return item

    # -- blocking operations ----------------------------------------------------

    @operation
    def enqueue(self, ctx: ThreadCtx, item):
        """Append ``item``; blocks while the queue is full."""
        yield self.lock.acquire()
        while True:
            size = yield self.size.read()
            if size < self.capacity:
                break
            yield self.not_full.wait()
        yield from self._enqueue_locked(ctx, item)
        yield self.lock.release()
        return None

    @operation
    def dequeue(self, ctx: ThreadCtx):
        """Remove and return the front item; blocks while empty."""
        yield self.lock.acquire()
        while True:
            size = yield self.size.read()
            if size > 0:
                break
            yield self.not_empty.wait()
        item = yield from self._dequeue_locked(ctx)
        yield self.lock.release()
        return item

    # -- non-blocking operations ---------------------------------------------------

    @operation
    def try_enqueue(self, ctx: ThreadCtx, item):
        """Append ``item`` unless full; returns success."""
        yield self.lock.acquire()
        size = yield self.size.read()
        if size >= self.capacity:
            yield ctx.commit()
            yield self.lock.release()
            return False
        yield from self._enqueue_locked(ctx, item)
        yield self.lock.release()
        return True

    @operation
    def try_dequeue(self, ctx: ThreadCtx):
        """Remove and return the front item, or :data:`EMPTY`."""
        yield self.lock.acquire()
        size = yield self.size.read()
        if size == 0:
            yield ctx.commit()
            yield self.lock.release()
            return EMPTY
        item = yield from self._dequeue_locked(ctx)
        yield self.lock.release()
        return item

    # -- observer --------------------------------------------------------------------

    @operation
    def size_of(self, ctx: ThreadCtx):
        yield self.lock.acquire()
        size = yield self.size.read()
        yield self.lock.release()
        return size

    # -- direct helpers -----------------------------------------------------------------

    def items(self) -> tuple:
        """Front-to-back contents (post-run assertions only)."""
        head = self.head.peek()
        size = self.size.peek()
        return tuple(
            self.buf[(head + i) % self.capacity].peek() for i in range(size)
        )

    VYRD_METHODS = {
        "enqueue": "mutator",
        "dequeue": "mutator",
        "try_enqueue": "mutator",
        "try_dequeue": "mutator",
        "size_of": "observer",
    }


def queue_view(capacity: int = 4) -> FunctionView:
    """``viewI``: the front-to-back contents reconstructed from the log."""

    def compute(state) -> dict:
        head = state.get("q.head", 0)
        size = state.get("q.size", 0)
        items = tuple(
            state.get(f"q.buf[{(head + i) % capacity}]") for i in range(size)
        )
        return {"queue": items}

    return FunctionView(compute)
