"""Typed diagnostics for the static instrumentation analyzer.

VYRD's guarantees are conditional on the programmer's annotations (paper
section 4.2): every mutator logs exactly one commit action per executed
path, commit blocks are well nested, and every shared access flows through
the traced kernel syscalls.  Each way an implementation can break that
contract is catalogued here as one rule; the analyzer in
:mod:`repro.lint.analyzer` reports violations as :class:`LintFinding`
values so the CLI, the harness pre-flight and the tests all consume the
same typed shape.
"""

from __future__ import annotations

from dataclasses import dataclass

WARN = "warn"
ERROR = "error"

SEVERITIES = (WARN, ERROR)


@dataclass(frozen=True)
class Rule:
    """One checkable annotation obligation."""

    rule_id: str
    severity: str
    title: str
    summary: str


RULES = {
    "VY001": Rule(
        "VY001",
        ERROR,
        "missing-yield",
        "a kernel-syscall call (cell read/write, lock acquire/release, "
        "ctx.commit/join/...) is not driven by yield / yield from, so it "
        "builds a syscall object (or a dormant generator) and discards it",
    ),
    "VY002": Rule(
        "VY002",
        ERROR,
        "commit-reachability",
        "a mutator method has a path from entry to return that crosses no "
        "commit point, so executions along it never appear in the witness "
        "interleaving",
    ),
    "VY003": Rule(
        "VY003",
        WARN,
        "multi-commit-path",
        "a path through a mutator crosses more than one commit point "
        "without opening a commit block, so one execution logs several "
        "commit actions",
    ),
    "VY004": Rule(
        "VY004",
        ERROR,
        "commit-block-balance",
        "begin/end commit-block brackets are not well nested or a path "
        "(including explicit raise edges) leaves the method with a block "
        "still open",
    ),
    "VY005": Rule(
        "VY005",
        WARN,
        "unlogged-shared-write",
        "state reachable from self is assigned directly inside an "
        "operation, bypassing the traced cell.write() syscall",
    ),
    "VY006": Rule(
        "VY006",
        ERROR,
        "observer-commits",
        "a method declared observer contains a commit point; observers "
        "must not log commit actions (paper section 4.3)",
    ),
    "VY007": Rule(
        "VY007",
        WARN,
        "inconsistent-lockset",
        "a shared field is accessed under lock sets that never intersect "
        "the locks every write holds (a static Eraser over the effect "
        "summaries); declare intentionally lock-free fields in "
        "VYRD_ATOMIC_FIELDS",
    ),
    "VY008": Rule(
        "VY008",
        WARN,
        "effect-summary-incomplete",
        "the effect analyzer cannot bound an operation's shared-state "
        "footprint (unresolvable syscall target, unknown delegation, or "
        "hidden mutation outside traced cells); the independence matrix "
        "must treat the operation as conflicting with everything",
    ),
}

ALL_RULE_IDS = tuple(sorted(RULES))


@dataclass(frozen=True)
class LintFinding:
    """One located diagnostic produced by a rule pass."""

    rule_id: str
    severity: str
    method: str
    file: str
    line: int
    message: str

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "method": self.method,
            "file": self.file,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.file}:{self.line}: {self.rule_id} [{self.severity}] "
            f"{self.method}: {self.message}"
        )


def severity_at_least(severity: str, threshold: str) -> bool:
    """True when ``severity`` is at or above ``threshold`` (warn < error)."""
    return SEVERITIES.index(severity) >= SEVERITIES.index(threshold)
