"""Front door of the static instrumentation analyzer.

* :func:`lint_class_source` -- analyze one class given its source text
  (what the mutation tests use: derive a broken variant, lint the text).
* :func:`lint_class` -- analyze a live implementation class / instance via
  :mod:`inspect`, discovering ``@operation`` methods and observer roles
  from the class itself.
* :func:`lint_program` / :func:`lint_registry` -- analyze the bundled
  workload-registry programs (what ``repro lint`` and the harness
  pre-flight run).

Findings on a line carrying ``# vyrd: ignore[VY00x]`` (or a bare
``# vyrd: ignore`` to silence every rule) are suppressed; suppressions
are expected to carry a trailing reason, e.g.::

    self._epoch += 1  # vyrd: ignore[VY005] -- checker-invisible counter
"""

from __future__ import annotations

import ast
import inspect
import re
import textwrap
from typing import Dict, FrozenSet, List, Optional, Set

from ..core.instrument import InstrumentationError
from .model import LintFinding
from .rules import (
    HELPER_PASSES,
    MUTATOR,
    OBSERVER,
    OPERATION_PASSES,
    MethodAnalysis,
    SummaryTable,
    _is_generator,
)

_SUPPRESS_RE = re.compile(
    r"#\s*vyrd:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)


class LintError(InstrumentationError):
    """Raised by the harness pre-flight when an implementation's
    instrumentation annotations fail static analysis."""

    def __init__(self, findings: List[LintFinding]):
        self.findings = list(findings)
        head = "; ".join(f.render() for f in self.findings[:3])
        more = len(self.findings) - 3
        if more > 0:
            head += f" (+{more} more)"
        super().__init__(
            f"instrumentation lint failed with "
            f"{len(self.findings)} finding(s): {head}"
        )


def _suppression_table(
    source: str, first_line: int
) -> Dict[int, Optional[FrozenSet[str]]]:
    """line number -> suppressed rule ids (None = every rule).

    An inline marker silences its own line; a marker on a standalone
    comment line silences the next non-comment line.
    """
    table: Dict[int, Optional[FrozenSet[str]]] = {}
    lines = source.splitlines()
    for offset, line in enumerate(lines):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        suppressed = (
            None
            if rules is None
            else frozenset(
                rule.strip().upper() for rule in rules.split(",") if rule.strip()
            )
        )
        target = offset
        if line.strip().startswith("#"):
            target = next(
                (
                    j
                    for j in range(offset + 1, len(lines))
                    if lines[j].strip() and not lines[j].strip().startswith("#")
                ),
                offset,
            )
        table[first_line + target] = suppressed
    return table


def collect_suppressions(
    source: str, *, filename: str = "<lint>", first_line: int = 1
) -> List[dict]:
    """Audit the active ``# vyrd: ignore[...]`` pragmas in ``source``.

    One dict per pragma: where it is, which rules it silences (``["*"]``
    for a bare ignore), which line it targets, and whether a trailing
    reason is present -- so CI can track suppression growth."""
    audit: List[dict] = []
    lines = source.splitlines()
    for offset, line in enumerate(lines):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        target = offset
        if line.strip().startswith("#"):
            target = next(
                (
                    j
                    for j in range(offset + 1, len(lines))
                    if lines[j].strip() and not lines[j].strip().startswith("#")
                ),
                offset,
            )
        audit.append({
            "file": filename,
            "line": first_line + offset,
            "target_line": first_line + target,
            "rules": (
                ["*"] if rules is None
                else sorted(
                    rule.strip().upper()
                    for rule in rules.split(",") if rule.strip()
                )
            ),
            "has_reason": bool(line[match.end():].strip(" \t-:#")),
        })
    return audit


def audit_suppressions(name: str) -> List[dict]:
    """Audit the pragmas of one registry program's implementation class."""
    from ..harness.workload import PROGRAMS  # late import

    built = PROGRAMS[name].build(False, 1)
    cls = type(built.impl)
    lines, first_line = inspect.getsourcelines(cls)
    filename = inspect.getsourcefile(cls) or "<unknown>"
    return collect_suppressions(
        "".join(lines), filename=filename, first_line=first_line
    )


def _suppressed(
    finding: LintFinding, table: Dict[int, Optional[FrozenSet[str]]]
) -> bool:
    if finding.line not in table:
        return False
    rules = table[finding.line]
    return rules is None or finding.rule_id in rules


def _decorated_operations(classdef: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for stmt in classdef.body:
        if not isinstance(stmt, ast.FunctionDef):
            continue
        for decorator in stmt.decorator_list:
            if isinstance(decorator, ast.Name) and decorator.id == "operation":
                names.add(stmt.name)
            elif (
                isinstance(decorator, ast.Attribute)
                and decorator.attr == "operation"
            ):
                names.add(stmt.name)
    return names


def _declared_observers(classdef: ast.ClassDef) -> Set[str]:
    """Observers declared in a literal ``VYRD_METHODS`` class attribute."""
    for stmt in classdef.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "VYRD_METHODS"
            for t in stmt.targets
        ):
            continue
        if not isinstance(stmt.value, ast.Dict):
            continue
        observers = set()
        for key, value in zip(stmt.value.keys, stmt.value.values):
            if (
                isinstance(key, ast.Constant)
                and isinstance(value, ast.Constant)
                and value.value == "observer"
            ):
                observers.add(key.value)
        return observers
    return set()


def lint_class_source(
    source: str,
    *,
    filename: str = "<lint>",
    first_line: int = 1,
    classname: Optional[str] = None,
    operations: Optional[Set[str]] = None,
    observers: Optional[Set[str]] = None,
) -> List[LintFinding]:
    """Analyze one class from source text; returns sorted findings.

    ``operations`` defaults to the methods decorated ``@operation`` in the
    source; ``observers`` defaults to the ``"observer"`` entries of a
    literal ``VYRD_METHODS`` class attribute.
    """
    tree = ast.parse(textwrap.dedent(source))
    classdef = None
    for stmt in ast.walk(tree):
        if isinstance(stmt, ast.ClassDef):
            if classname is None or stmt.name == classname:
                classdef = stmt
                break
    if classdef is None:
        raise ValueError(
            f"no class definition{f' {classname!r}' if classname else ''} "
            f"found in {filename}"
        )
    if operations is None:
        operations = _decorated_operations(classdef)
    if observers is None:
        observers = _declared_observers(classdef)
    methods = {
        stmt.name: stmt
        for stmt in classdef.body
        if isinstance(stmt, ast.FunctionDef)
    }
    line_offset = first_line - 1
    summaries = SummaryTable(methods, filename, line_offset)
    findings: List[LintFinding] = []
    for name, fn in methods.items():
        if name in operations:
            role = OBSERVER if name in observers else MUTATOR
            passes = OPERATION_PASSES
        elif _is_generator(fn):
            role = "helper"
            passes = HELPER_PASSES
        else:
            continue
        analysis = MethodAnalysis(fn, role, filename, line_offset, summaries)
        for rule_pass in passes:
            findings.extend(rule_pass(analysis))
    from .effects import effect_findings  # late import: effects uses rules

    findings.extend(effect_findings(
        source,
        filename=filename,
        first_line=first_line,
        classname=classdef.name,
        operations=operations,
        observers=observers,
    ))
    table = _suppression_table(source, first_line)
    findings = [f for f in findings if not _suppressed(f, table)]
    findings.sort(key=lambda f: (f.file, f.line, f.rule_id))
    return findings


def lint_class(impl, *, observers: Optional[Set[str]] = None) -> List[LintFinding]:
    """Analyze a live implementation class (or instance of one).

    ``@operation`` methods are discovered from the runtime marker the
    decorator leaves; ``observers`` defaults to the class's
    ``VYRD_METHODS`` declaration.
    """
    cls = impl if inspect.isclass(impl) else type(impl)
    try:
        lines, first_line = inspect.getsourcelines(cls)
    except (OSError, TypeError) as exc:
        raise ValueError(
            f"cannot retrieve source for {cls.__name__}: {exc}"
        ) from exc
    filename = inspect.getsourcefile(cls) or "<unknown>"
    operations = {
        name
        for name in dir(cls)
        if getattr(getattr(cls, name, None), "_vyrd_operation", False)
    }
    if observers is None:
        declared = getattr(cls, "VYRD_METHODS", None)
        if isinstance(declared, dict):
            observers = {
                name for name, role in declared.items() if role == "observer"
            }
    return lint_class_source(
        "".join(lines),
        filename=filename,
        first_line=first_line,
        classname=cls.__name__,
        operations=operations or None,
        observers=observers,
    )


def lint_program(name: str) -> List[LintFinding]:
    """Analyze the implementation class behind one registry program."""
    from ..harness.workload import PROGRAMS  # late import: harness uses lint

    built = PROGRAMS[name].build(False, 1)
    return lint_class(built.impl)


def lint_registry() -> Dict[str, List[LintFinding]]:
    """Analyze every bundled registry program; name -> findings."""
    from ..harness.workload import PROGRAMS

    return {name: lint_program(name) for name in sorted(PROGRAMS)}
