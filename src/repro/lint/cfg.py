"""Per-method control-flow graphs over the raw function AST.

Every rule pass in :mod:`repro.lint.rules` is path-sensitive in the same
way -- "does some path from entry to an exit cross / avoid / unbalance
these statements?" -- so they all share one CFG per analyzed method,
built once by :func:`build_cfg` and handed to each pass.

The graph is deliberately statement-grained (one node per AST statement
plus synthetic entry / handler / finally nodes) rather than basic-block
grained: methods on the simulated-concurrency substrate are small, and
statement granularity keeps finding locations exact.

Modeled control flow
--------------------
``if`` / ``for`` / ``while`` (with ``break`` / ``continue`` / ``else``),
``with``, ``return``, ``try`` / ``except`` / ``finally`` and explicit
``raise``.  Inside a ``try`` body every statement may branch to every
handler (the standard conservative approximation); an explicit ``raise``
with no enclosing handler routes through the nearest enclosing ``finally``
before leaving the method.  *Implicit* exceptions (a yield resumed with
``KernelStopped``, an IndexError, ...) are not modeled -- that boundary is
documented in ARCHITECTURE.md section 9 and is exactly what the runtime
well-formedness validator still covers.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple


class Node:
    """One CFG node: an AST statement or a synthetic control point."""

    __slots__ = ("index", "stmt", "kind")

    def __init__(self, index: int, stmt: Optional[ast.AST], kind: str):
        self.index = index
        self.stmt = stmt
        self.kind = kind  # "entry" | "stmt" | "handler" | "finally"

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = type(self.stmt).__name__ if self.stmt is not None else self.kind
        return f"<Node {self.index} {label}>"


class CFG:
    """The control-flow graph of one function body."""

    def __init__(self, fn: ast.FunctionDef):
        self.fn = fn
        self.nodes: List[Node] = []
        self.succ: Dict[Node, Set[Node]] = {}
        self.pred: Dict[Node, Set[Node]] = {}
        # (node, kind) pairs where kind is "return", "fall-off" or "raise";
        # the method-exit state of a path is the state *after* the node.
        self.exits: List[Tuple[Node, str]] = []
        self.entry = self._new(None, "entry")

    def _new(self, stmt: Optional[ast.AST], kind: str) -> Node:
        node = Node(len(self.nodes), stmt, kind)
        self.nodes.append(node)
        self.succ[node] = set()
        self.pred[node] = set()
        return node

    def _link(self, src: Node, dst: Node) -> None:
        self.succ[src].add(dst)
        self.pred[dst].add(src)

    # -- dataflow ----------------------------------------------------------

    def forward(
        self,
        init: FrozenSet,
        transfer: Callable[[Node, FrozenSet], FrozenSet],
    ) -> Dict[Node, FrozenSet]:
        """Run a forward union-merge dataflow; returns out-states per node.

        ``transfer(node, in_state)`` maps the merged in-state to the node's
        out-state; the entry node's out-state is ``init``.
        """
        out: Dict[Node, FrozenSet] = {node: frozenset() for node in self.nodes}
        out[self.entry] = init
        worklist = [n for n in self.succ[self.entry]]
        while worklist:
            node = worklist.pop()
            merged: FrozenSet = frozenset().union(
                *(out[p] for p in self.pred[node])
            )
            new = transfer(node, merged)
            if new != out[node]:
                out[node] = new
                worklist.extend(self.succ[node])
        return out

    def in_state(self, node: Node, out: Dict[Node, FrozenSet]) -> FrozenSet:
        return frozenset().union(*(out[p] for p in self.pred[node]))


class _Builder:
    def __init__(self, fn: ast.FunctionDef):
        self.cfg = CFG(fn)
        # (loop-header node, break-node collector) innermost last
        self.loops: List[Tuple[Node, List[Node]]] = []
        # nearest enclosing exception targets (handler / finally entry nodes)
        self.exc_targets: List[List[Node]] = []

    def build(self) -> CFG:
        frontier = self._body(self.cfg.fn.body, [self.cfg.entry])
        for node in frontier:
            self.cfg.exits.append((node, "fall-off"))
        return self.cfg

    # -- helpers -----------------------------------------------------------

    def _stmt(self, stmt: ast.AST, frontier: List[Node], kind: str = "stmt") -> Node:
        node = self.cfg._new(stmt, kind)
        for src in frontier:
            self.cfg._link(src, node)
        if self.exc_targets:
            for target in self.exc_targets[-1]:
                self.cfg._link(node, target)
        return node

    def _body(self, stmts: List[ast.stmt], frontier: List[Node]) -> List[Node]:
        for stmt in stmts:
            frontier = self._dispatch(stmt, frontier)
        return frontier

    def _dispatch(self, stmt: ast.stmt, frontier: List[Node]) -> List[Node]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            return self._loop(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self._stmt(stmt, frontier)
            return self._body(stmt.body, [node])
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, ast.Return):
            node = self._stmt(stmt, frontier)
            self.cfg.exits.append((node, "return"))
            return []
        if isinstance(stmt, ast.Raise):
            node = self._stmt(stmt, frontier)
            if not self.exc_targets:
                self.cfg.exits.append((node, "raise"))
            return []
        if isinstance(stmt, ast.Break):
            node = self._stmt(stmt, frontier)
            if self.loops:
                self.loops[-1][1].append(node)
            return []
        if isinstance(stmt, ast.Continue):
            node = self._stmt(stmt, frontier)
            if self.loops:
                self.cfg._link(node, self.loops[-1][0])
            return []
        return [self._stmt(stmt, frontier)]

    def _if(self, stmt: ast.If, frontier: List[Node]) -> List[Node]:
        test = self._stmt(stmt, frontier)
        then_end = self._body(stmt.body, [test])
        if stmt.orelse:
            else_end = self._body(stmt.orelse, [test])
        else:
            else_end = [test]
        return then_end + else_end

    @staticmethod
    def _always_true(stmt: ast.AST) -> bool:
        test = getattr(stmt, "test", None)
        return isinstance(test, ast.Constant) and bool(test.value)

    def _loop(self, stmt: ast.stmt, frontier: List[Node]) -> List[Node]:
        header = self._stmt(stmt, frontier)
        breaks: List[Node] = []
        self.loops.append((header, breaks))
        body_end = self._body(stmt.body, [header])
        self.loops.pop()
        for node in body_end:
            self.cfg._link(node, header)
        if isinstance(stmt, ast.While) and self._always_true(stmt):
            after: List[Node] = []  # `while True` only exits via break
        elif stmt.orelse:
            after = self._body(stmt.orelse, [header])
        else:
            after = [header]
        return after + breaks

    def _try(self, stmt: ast.Try, frontier: List[Node]) -> List[Node]:
        handler_entries = [
            self.cfg._new(handler, "handler") for handler in stmt.handlers
        ]
        finally_entry = (
            self.cfg._new(stmt, "finally") if stmt.finalbody else None
        )
        # while in the body, raising reaches the handlers (or, with no
        # handlers, the finally before leaving the method)
        if handler_entries:
            self.exc_targets.append(handler_entries)
        elif finally_entry is not None:
            self.exc_targets.append([finally_entry])
        else:
            self.exc_targets.append([])
        body_end = self._body(stmt.body, frontier)
        if stmt.orelse:
            body_end = self._body(stmt.orelse, body_end)
        self.exc_targets.pop()
        handler_ends: List[Node] = []
        for handler, entry in zip(stmt.handlers, handler_entries):
            handler_ends.extend(self._body(handler.body, [entry]))
        frontier = body_end + handler_ends
        if finally_entry is not None:
            for node in frontier:
                self.cfg._link(node, finally_entry)
            frontier = self._body(stmt.finalbody, [finally_entry])
        return frontier


def build_cfg(fn: ast.FunctionDef) -> CFG:
    """Build the statement-grained CFG of one function definition."""
    return _Builder(fn).build()
