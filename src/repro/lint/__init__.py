"""Static instrumentation analysis (`repro.lint`).

VYRD is only as sound as the annotations the implementation carries
(paper section 4.2): commit actions, commit blocks and traced shared
cells.  This package checks those obligations *before the program ever
runs* -- an AST/CFG analysis over every ``@operation`` generator -- and
reports violations as typed, located :class:`LintFinding` diagnostics.

See ARCHITECTURE.md section 9 for the rule catalog, the CFG construction
and the static/dynamic boundary.
"""

from .analyzer import (
    LintError,
    lint_class,
    lint_class_source,
    lint_program,
    lint_registry,
)
from .model import (
    ALL_RULE_IDS,
    ERROR,
    RULES,
    WARN,
    LintFinding,
    Rule,
    severity_at_least,
)

__all__ = [
    "ALL_RULE_IDS",
    "ERROR",
    "LintError",
    "LintFinding",
    "RULES",
    "Rule",
    "WARN",
    "lint_class",
    "lint_class_source",
    "lint_program",
    "lint_registry",
    "severity_at_least",
]
