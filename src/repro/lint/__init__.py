"""Static instrumentation analysis (`repro.lint`).

VYRD is only as sound as the annotations the implementation carries
(paper section 4.2): commit actions, commit blocks and traced shared
cells.  This package checks those obligations *before the program ever
runs* -- an AST/CFG analysis over every ``@operation`` generator -- and
reports violations as typed, located :class:`LintFinding` diagnostics.

On top of the rule passes, :mod:`repro.lint.effects` computes per
operation *effect summaries* (shared paths read/written, locks, commit
kinds) and derives the static operation-independence matrix that drives
``explore --reduce static`` (ARCHITECTURE section 15), plus the VY007
(inconsistent-lockset) and VY008 (effect-summary-incomplete) rules.

See ARCHITECTURE.md section 9 for the rule catalog, the CFG construction
and the static/dynamic boundary.
"""

from .analyzer import (
    LintError,
    audit_suppressions,
    collect_suppressions,
    lint_class,
    lint_class_source,
    lint_program,
    lint_registry,
)
from .effects import (
    Access,
    ClassEffects,
    EffectSummary,
    PairVerdict,
    analyze_class,
    analyze_class_source,
    analyze_program,
    classify_pair,
)
from .model import (
    ALL_RULE_IDS,
    ERROR,
    RULES,
    WARN,
    LintFinding,
    Rule,
    severity_at_least,
)

__all__ = [
    "ALL_RULE_IDS",
    "Access",
    "ClassEffects",
    "ERROR",
    "EffectSummary",
    "LintError",
    "LintFinding",
    "PairVerdict",
    "RULES",
    "Rule",
    "WARN",
    "analyze_class",
    "analyze_class_source",
    "analyze_program",
    "audit_suppressions",
    "classify_pair",
    "collect_suppressions",
    "lint_class",
    "lint_class_source",
    "lint_program",
    "lint_registry",
    "severity_at_least",
]
