"""Static effect summaries and the operation independence matrix.

Where the six rule passes of :mod:`repro.lint.rules` judge *annotation
placement*, this module asks a semantic question: **what shared state can
each ``@operation`` touch, and which pairs of operations commute?**  It
reuses the statement-grained CFG (:mod:`repro.lint.cfg`) and the VY001
taint machinery and computes, per generator method, an
:class:`EffectSummary`:

* the abstract *paths* rooted at ``self`` that the method may read or
  write through traced cell syscalls (``self.slots[i].elt.read()`` ->
  ``slots[*].elt``: every subscript folds to ``[*]``, accessor calls like
  ``self.node(nid).cell`` fold through a one-level summary of the plain
  method);
* the locks it may acquire (with reader/writer mode), and -- via a
  must-hold lockset dataflow over the CFG -- the locks *certainly held*
  at each access;
* the commit kinds it can log (``ctx.commit()``, ``commit=True`` writes /
  releases / commit-block ends, ``ctx.replay``);
* whether the footprint is *complete*: a syscall whose target the
  analyzer cannot resolve, a delegation it cannot follow, or a hidden
  mutation of untraced ``self`` state makes the summary incomplete and
  the operation must be treated as conflicting with everything (VY008).

From the summaries it derives the **static independence matrix** over
operation pairs (:func:`classify_pair`): disjoint write/read-write
footprints *and* disjoint locksets mean the pair is ``independent``;
overlaps only on ``[*]``-abstracted elements mean ``conditional``
(same-structure operations on *distinct* keys commute -- e.g. multiset
inserts of different values); anything else is ``dependent``.  Two lint
rules fall out of the same facts:

* **VY007 inconsistent-lockset** -- a static Eraser: a shared field is
  written under a candidate lockset that some other access does not
  intersect.
* **VY008 effect-summary-incomplete** -- the analyzer cannot bound an
  operation's footprint, so schedule reduction must pessimise it.

Two literal class attributes refine the analysis (both mirrored in the
runtime harness):

* ``VYRD_ATOMIC_FIELDS = ("root", "_nodes[*].cell", ...)`` -- paths that
  are atomic by construction (the static mirror of
  ``Program.atomic_locs``; the B-link tree's lock-free descents);
  exempt from VY007.
* ``VYRD_CONFLUENT_HELPERS = ("_alloc_node", ...)`` -- plain (non
  generator) helpers whose hidden ``self`` mutations are declared
  schedule-confluent (e.g. per-thread id allocation); their written
  paths still enter the footprint (prefixed ``py:``) but do not make
  the summary incomplete.  The declaration is checked dynamically by
  the schedule-reduction equivalence gate.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .cfg import Node
from .model import RULES, LintFinding
from .rules import (
    MUTATOR,
    OBSERVER,
    MethodAnalysis,
    SummaryTable,
    _call_is_ctx,
    _commit_kwarg,
    _is_generator,
    _root_name,
)

# syscall-building attributes, by effect kind
_READ_ATTRS = {"read"}
_WRITE_ATTRS = {"write"}
_ACQ_ATTRS = {"acquire": "x", "begin_read": "r", "begin_write": "w"}
_REL_ATTRS = {"release": "x", "end_read": "r", "end_write": "w"}
# dict/list/set mutators: calling one on a self path is a hidden write
_CONTAINER_MUTATORS = {
    "append", "add", "clear", "discard", "extend", "insert", "pop",
    "popitem", "remove", "setdefault", "update", "__setitem__",
}

TOP = object()  # unresolvable value (absorbing)

INDEPENDENT = "independent"
CONDITIONAL = "conditional"
DEPENDENT = "dependent"


# ---------------------------------------------------------------------------
# Abstract paths
# ---------------------------------------------------------------------------


def render_path(path: Tuple[str, ...]) -> str:
    out = ""
    for comp in path:
        if comp == "[*]":
            out += "[*]"
        elif out:
            out += "." + comp
        else:
            out = comp
    return out or "<self>"


def paths_overlap(a: Tuple[str, ...], b: Tuple[str, ...]) -> bool:
    """One path reaches the other: componentwise-equal prefix."""
    n = min(len(a), len(b))
    return a[:n] == b[:n]


def _overlap_is_starred(a: Tuple[str, ...], b: Tuple[str, ...]) -> bool:
    n = min(len(a), len(b))
    return "[*]" in a[:n]


# ---------------------------------------------------------------------------
# Accessor summaries: plain (non-generator) self methods used in chains
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AccessorSummary:
    """What a plain helper returns / hides, abstractly."""

    returns: object  # frozenset of paths | TOP | None | tuple of those
    hidden_writes: FrozenSet[Tuple[str, ...]]
    ok: bool  # False: the interpreter bailed (treat result as TOP)


class _AccessorTable:
    def __init__(self, methods: Dict[str, ast.FunctionDef]):
        self._methods = methods
        self._memo: Dict[str, AccessorSummary] = {}
        self._in_progress: Set[str] = set()

    def summary(self, name: str) -> AccessorSummary:
        if name in self._memo:
            return self._memo[name]
        fn = self._methods.get(name)
        if fn is None or name in self._in_progress or _is_generator(fn):
            return AccessorSummary(TOP, frozenset(), False)
        self._in_progress.add(name)
        try:
            result = self._interpret(fn)
        finally:
            self._in_progress.discard(name)
        self._memo[name] = result
        return result

    def _interpret(self, fn: ast.FunctionDef) -> AccessorSummary:
        """Abstract interpretation of a plain helper (straight-line code
        plus ``if``/``else``, whose branch environments are union-merged).

        Tracks local -> path bindings, including the *publishing rescue*:
        ``self._nodes[slot.nid] = slot`` binds ``slot`` to ``_nodes[*]``
        (the freshly built object is reachable there from now on)."""
        args = fn.args.args
        self_name = args[0].arg if args else "self"
        env: Dict[str, object] = {self_name: frozenset({()})}
        hidden: Set[Tuple[str, ...]] = set()
        returns: List[object] = []
        ok = self._run_block(fn.body, env, hidden, returns)
        if not ok:
            return AccessorSummary(TOP, frozenset(hidden), False)
        returned = _merge_returns(returns)
        return AccessorSummary(returned, frozenset(hidden), True)

    def _run_block(self, body, env: Dict[str, object],
                   hidden: Set[Tuple[str, ...]],
                   returns: List[object]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.If):
                hidden |= _hidden_writes_in(stmt.test, env, self)
                branch = dict(env)
                if not self._run_block(stmt.body, branch, hidden, returns):
                    return False
                if not self._run_block(stmt.orelse, env, hidden, returns):
                    return False
                _merge_env(env, branch)
                continue
            if isinstance(stmt, (ast.For, ast.While, ast.Try, ast.With,
                                 ast.Match)):
                return False
            hidden |= _hidden_writes_in(stmt, env, self)
            if isinstance(stmt, ast.Assign):
                value_paths = _resolve(stmt.value, env, self)
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        env[target.id] = value_paths
                    elif isinstance(target, ast.Tuple) and isinstance(
                        stmt.value, ast.Tuple
                    ) and len(target.elts) == len(stmt.value.elts):
                        for t, v in zip(target.elts, stmt.value.elts):
                            if isinstance(t, ast.Name):
                                env[t.id] = _resolve(v, env, self)
                    else:
                        # publishing rescue: self-path = local
                        tp = _resolve(target, env, self)
                        if (
                            isinstance(tp, frozenset)
                            and isinstance(stmt.value, ast.Name)
                        ):
                            env[stmt.value.id] = tp
            elif isinstance(stmt, ast.Return):
                if stmt.value is None:
                    returns.append(None)
                elif isinstance(stmt.value, ast.Tuple):
                    returns.append(tuple(
                        _resolve(elt, env, self) for elt in stmt.value.elts
                    ))
                else:
                    returns.append(_resolve(stmt.value, env, self))
                return True
        return True


def _merge_env(env: Dict[str, object], other: Dict[str, object]) -> None:
    for name, value in other.items():
        old = env.get(name)
        if old == value:
            continue
        if old is TOP or value is TOP:
            env[name] = TOP
        elif isinstance(old, frozenset) and isinstance(value, frozenset):
            env[name] = old | value
        else:
            env[name] = old if isinstance(old, frozenset) else value


def _merge_returns(returns: List[object]) -> object:
    if not returns:
        return None
    distinct = [r for r in returns]
    first = distinct[0]
    if all(r == first for r in distinct):
        return first
    tuples = [r for r in distinct if isinstance(r, tuple)]
    if tuples and len(tuples) == len(distinct):
        width = len(tuples[0])
        if all(len(t) == width for t in tuples):
            return tuple(
                _merge_returns([t[i] for t in tuples]) for i in range(width)
            )
        return TOP
    merged: Set[Tuple[str, ...]] = set()
    for r in distinct:
        if r is TOP or isinstance(r, tuple):
            return TOP
        if isinstance(r, frozenset):
            merged |= r
    return frozenset(merged) if merged else None


def _hidden_write_sites(stmt: ast.AST, env: Dict[str, object],
                        accessors: "_AccessorTable"
                        ) -> List[Tuple[int, Tuple[str, ...]]]:
    """Untraced mutations of self state in ``stmt``, as (line, path)."""
    sites: List[Tuple[int, Tuple[str, ...]]] = []

    def note(line: int, expr: ast.AST) -> None:
        paths = _resolve(expr, env, accessors)
        if isinstance(paths, frozenset):
            sites.extend((line, p) for p in paths)

    for node in ast.walk(stmt):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = node.targets
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in _CONTAINER_MUTATORS:
                    note(node.lineno, func.value)
            elif (
                isinstance(func, ast.Name)
                and func.id == "next"
                and node.args
            ):
                # next(self._ids) draws from shared mutable state
                note(node.lineno, node.args[0])
            continue
        for target in targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                note(node.lineno, target)
    return sites


def _hidden_writes_in(stmt: ast.AST, env: Dict[str, object],
                      accessors: "_AccessorTable") -> Set[Tuple[str, ...]]:
    """Untraced mutations of self state performed by ``stmt``."""
    return {path for _, path in _hidden_write_sites(stmt, env, accessors)}


def _resolve(expr: ast.AST, env: Dict[str, object],
             accessors: "_AccessorTable") -> object:
    """Abstract paths an expression can denote.

    Returns a frozenset of path tuples, ``TOP`` (unresolvable but
    possibly shared), or ``None`` (not rooted in shared state)."""
    if isinstance(expr, ast.Name):
        return env.get(expr.id)
    if isinstance(expr, ast.Attribute):
        base = _resolve(expr.value, env, accessors)
        if base is None or base is TOP:
            return base
        return frozenset(p + (expr.attr,) for p in base)
    if isinstance(expr, ast.Subscript):
        base = _resolve(expr.value, env, accessors)
        if base is None or base is TOP:
            return base
        return frozenset(p + ("[*]",) for p in base)
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Attribute):
            base = _resolve(func.value, env, accessors)
            if base is None:
                return None
            if base is TOP:
                return TOP
            if base == frozenset({()}):
                # direct self.helper(...): fold the accessor summary
                summary = accessors.summary(func.attr)
                result = summary.returns
                if not summary.ok:
                    return TOP
                if isinstance(result, tuple):
                    # tuple-returning accessor used as a value
                    merged: Set[Tuple[str, ...]] = set()
                    for elem in result:
                        if elem is TOP:
                            return TOP
                        if isinstance(elem, frozenset):
                            merged |= elem
                    return frozenset(merged) if merged else None
                return result
            # method call on a non-self-root path (tainted chain):
            # cannot follow -> unresolvable
            return TOP
        return None
    if isinstance(expr, ast.IfExp):
        a = _resolve(expr.body, env, accessors)
        b = _resolve(expr.orelse, env, accessors)
        if a is TOP or b is TOP:
            return TOP
        merged = set()
        for part in (a, b):
            if isinstance(part, frozenset):
                merged |= part
        return frozenset(merged) if merged else None
    if isinstance(expr, (ast.Await, ast.Starred)):
        return _resolve(expr.value, env, accessors)
    return None


# ---------------------------------------------------------------------------
# Per-method effect summaries
# ---------------------------------------------------------------------------


LockToken = Tuple[str, str]  # (rendered path, mode "x"/"r"/"w")

# The lockset dataflow tracks *multiplicities*: hand-over-hand coupling
# (acquire child, release parent) collapses both locks onto one abstract
# token such as ``_nodes[*].lock``, and a plain set would go empty after
# the release even though one lock is certainly still held.  A held state
# is therefore a frozenset of ``(token, level)`` pairs with contiguous
# levels from 0 -- acquiring adds the next level, releasing removes the
# highest -- so ``(token, 0)`` is present exactly when the count is >= 1.
HeldState = FrozenSet[Tuple[LockToken, int]]


def _acq_token(held: HeldState, token: LockToken) -> HeldState:
    count = sum(1 for t, _ in held if t == token)
    return held | {(token, count)}


def _rel_token(held: HeldState, token: LockToken) -> Optional[HeldState]:
    """Drop one instance of ``token``; None when it is not held."""
    levels = [level for t, level in held if t == token]
    if not levels:
        return None
    return held - {(token, max(levels))}


def _held_tokens(held: HeldState) -> FrozenSet[LockToken]:
    return frozenset(t for t, _ in held)


@dataclass(frozen=True)
class Access:
    """One traced shared access, with the locks certainly held at it."""

    path: Tuple[str, ...]
    kind: str  # "read" | "write"
    line: int
    method: str  # method whose body performs the access
    locks: FrozenSet[LockToken]
    outer_released: FrozenSet[LockToken] = frozenset()

    def to_dict(self) -> dict:
        return {
            "path": render_path(self.path),
            "kind": self.kind,
            "line": self.line,
            "method": self.method,
            "locks": sorted(_render_lock(t) for t in self.locks),
        }


def _render_lock(token: LockToken) -> str:
    path, mode = token
    return path if mode == "x" else f"{path}({mode})"


@dataclass(frozen=True)
class EffectSummary:
    """The statically bounded effect footprint of one generator method."""

    method: str
    role: str
    reads: FrozenSet[Tuple[str, ...]]
    writes: FrozenSet[Tuple[str, ...]]
    hidden_writes: FrozenSet[Tuple[str, ...]]
    locks: FrozenSet[LockToken]
    commit_kinds: FrozenSet[str]
    accesses: Tuple[Access, ...]
    # (locks held at a normal exit as leveled HeldState, caller locks
    # released without acquiring) -- consumed when the method is inlined
    exit_deltas: FrozenSet[tuple]
    complete: bool
    reasons: Tuple[Tuple[int, str], ...]

    def footprint_writes(self) -> FrozenSet[Tuple[str, ...]]:
        return self.writes | frozenset(
            ("py:",) + p for p in self.hidden_writes
        )

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "role": self.role,
            "reads": sorted(render_path(p) for p in self.reads),
            "writes": sorted(render_path(p) for p in self.writes),
            "hidden_writes": sorted(
                render_path(p) for p in self.hidden_writes
            ),
            "locks": sorted(_render_lock(t) for t in self.locks),
            "commit_kinds": sorted(self.commit_kinds),
            "complete": self.complete,
            "incomplete_reasons": [
                {"line": line, "reason": reason}
                for line, reason in self.reasons
            ],
        }


_EMPTY_SUMMARY_FIELDS = dict(
    reads=frozenset(), writes=frozenset(), hidden_writes=frozenset(),
    locks=frozenset(), commit_kinds=frozenset(), accesses=(),
    exit_deltas=frozenset({(frozenset(), frozenset())}),
    complete=True, reasons=(),
)


class EffectTable:
    """Fixpoint effect summaries for every generator method of a class.

    Recursive helpers converge by iterating summarization until no
    summary changes (all components are finite and grow monotonically)."""

    def __init__(self, methods: Dict[str, ast.FunctionDef], file: str,
                 line_offset: int, roles: Dict[str, str],
                 confluent: FrozenSet[str]):
        self._methods = methods
        self._file = file
        self._line_offset = line_offset
        self._roles = roles
        self._confluent = confluent
        self._accessors = _AccessorTable(methods)
        self._commit_summaries = SummaryTable(methods, file, line_offset)
        self._facts: Dict[str, MethodAnalysis] = {}
        self.summaries: Dict[str, EffectSummary] = {}
        self._compute()

    # -- fixpoint driver ----------------------------------------------------

    def _compute(self) -> None:
        names = [
            name for name, fn in self._methods.items() if _is_generator(fn)
        ]
        for name in names:
            self.summaries[name] = EffectSummary(
                method=name, role=self._roles.get(name, "helper"),
                **_EMPTY_SUMMARY_FIELDS,
            )
        for _ in range(4 * len(names) + 8):
            changed = False
            for name in names:
                new = self._summarize(name)
                if new != self.summaries[name]:
                    self.summaries[name] = new
                    changed = True
            if not changed:
                return
        # non-convergence would be an analyzer bug; pessimise everything
        for name in names:  # pragma: no cover - defensive
            self.summaries[name] = EffectSummary(
                method=name, role=self._roles.get(name, "helper"),
                reads=frozenset(), writes=frozenset(),
                hidden_writes=frozenset(), locks=frozenset(),
                commit_kinds=frozenset(), accesses=(),
                exit_deltas=frozenset({(frozenset(), frozenset())}),
                complete=False,
                reasons=((self._methods[name].lineno + self._line_offset,
                          "effect fixpoint did not converge"),),
            )

    def _analysis(self, name: str) -> MethodAnalysis:
        if name not in self._facts:
            self._facts[name] = MethodAnalysis(
                self._methods[name], self._roles.get(name, "helper"),
                self._file, self._line_offset, self._commit_summaries,
            )
        return self._facts[name]

    # -- one summarization pass --------------------------------------------

    def _summarize(self, name: str) -> EffectSummary:
        analysis = self._analysis(name)
        fn = analysis.fn
        env = self._path_env(analysis)
        reads: Set[Tuple[str, ...]] = set()
        writes: Set[Tuple[str, ...]] = set()
        hidden: Set[Tuple[str, ...]] = set()
        locks: Set[LockToken] = set()
        commit_kinds: Set[str] = set()
        accesses: Set[Access] = set()
        reasons: List[Tuple[int, str]] = []
        complete = True

        def incomplete(node: ast.AST, why: str) -> None:
            nonlocal complete
            complete = False
            reasons.append((analysis.abs_line(node), why))

        # hidden mutations: direct writes / container mutators / next()
        # in the generator body itself, plus any performed by plain
        # helpers it calls
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == analysis.self_name
                    and func.attr in self._methods
                    and not _is_generator(self._methods[func.attr])
                ):
                    acc = self._accessors.summary(func.attr)
                    if acc.hidden_writes:
                        hidden |= set(acc.hidden_writes)
                        if func.attr not in self._confluent:
                            incomplete(
                                node,
                                f"calls self.{func.attr}() which mutates "
                                + ", ".join(sorted(
                                    render_path(p)
                                    for p in acc.hidden_writes
                                ))
                                + " outside traced cells (declare it in "
                                "VYRD_CONFLUENT_HELPERS if its effect is "
                                "schedule-confluent)",
                            )
        body_sites = _hidden_write_sites(
            fn, {analysis.self_name: frozenset({()})}, self._accessors
        )
        if body_sites:
            hidden |= {path for _, path in body_sites}
            if name not in self._confluent:
                by_line: Dict[int, Set[Tuple[str, ...]]] = {}
                for lineno, path in body_sites:
                    by_line.setdefault(lineno, set()).add(path)
                for lineno, paths in sorted(by_line.items()):
                    complete = False
                    reasons.append((
                        lineno + self._line_offset,
                        "mutates "
                        + ", ".join(sorted(render_path(p) for p in paths))
                        + " without a traced cell.write() syscall (declare "
                        "the method in VYRD_CONFLUENT_HELPERS if its effect "
                        "is schedule-confluent)",
                    ))

        # lockset dataflow over the CFG
        events = {
            node: self._node_events(analysis, node, env)
            for node in analysis.cfg.nodes
        }

        def transfer(node: Node, state: frozenset) -> frozenset:
            out = set(state)
            for event in events[node]:
                new: Set[Tuple[HeldState, FrozenSet[LockToken]]]
                new = set()
                for held, outer in out:
                    if event[0] == "acq":
                        token = event[1]
                        if token in outer:
                            # re-acquiring a lock the caller had held:
                            # the caller's protection is restored
                            new.add((held, outer - {token}))
                        else:
                            new.add((_acq_token(held, token), outer))
                    elif event[0] == "rel":
                        token = event[1]
                        shrunk = _rel_token(held, token)
                        if shrunk is not None:
                            new.add((shrunk, outer))
                        else:
                            new.add((held, outer | {token}))
                    else:  # helper delegation
                        summary = self.summaries.get(event[1])
                        deltas = (
                            summary.exit_deltas if summary is not None
                            else frozenset({(frozenset(), frozenset())})
                        )
                        for add, out_rel in deltas:
                            h, o = held, outer
                            for token, _ in sorted(add):
                                if token in o:
                                    o = o - {token}
                                else:
                                    h = _acq_token(h, token)
                            for token in out_rel:
                                shrunk = _rel_token(h, token)
                                if shrunk is not None:
                                    h = shrunk
                                else:
                                    o = o | {token}
                            new.add((h, o))
                out = new
            return frozenset(out)

        init = frozenset({(frozenset(), frozenset())})
        flow = analysis.cfg.forward(init, transfer)

        def must_held(node: Node) -> Tuple[FrozenSet[LockToken],
                                           FrozenSet[LockToken]]:
            states = analysis.cfg.in_state(node, flow)
            if not states:
                return frozenset(), frozenset()
            held_sets = [held for held, _ in states]
            outer_sets = [outer for _, outer in states]
            # levels are contiguous from 0, so (token, 0) survives the
            # intersection exactly when every in-state holds the token
            must = _held_tokens(frozenset.intersection(*held_sets))
            outer = frozenset().union(*outer_sets)
            return must, outer

        # traced accesses + delegated helper effects, per CFG node
        for node in analysis.cfg.nodes:
            if node.stmt is None or node.kind == "handler":
                continue
            must, outer_may = must_held(node)
            for call in _shallow_yielded_calls(analysis, node):
                func = call.func
                if not isinstance(func, ast.Attribute):
                    continue
                attr = func.attr
                if _call_is_ctx(call, analysis.ctx_name, attr):
                    if attr == "commit":
                        commit_kinds.add("commit")
                    elif attr == "replay":
                        commit_kinds.add("replay")
                        reads.add(("replay:",))
                        writes.add(("replay:",))
                    elif attr == "end_commit_block":
                        if _commit_kwarg(call) or (
                            call.args
                            and isinstance(call.args[0], ast.Constant)
                            and bool(call.args[0].value)
                        ):
                            commit_kinds.add("commit-block")
                    continue
                if isinstance(self._parent_of(analysis, call),
                              ast.YieldFrom) and isinstance(
                    func.value, ast.Name
                ) and func.value.id == analysis.self_name:
                    # yield from self.helper(...)
                    target = attr
                    if target not in self._methods:
                        incomplete(
                            call,
                            f"delegates to unknown method "
                            f"self.{target}(...)",
                        )
                        continue
                    summary = self.summaries.get(target)
                    if summary is None:
                        incomplete(
                            call,
                            f"delegates to self.{target}(...) which is "
                            "not a generator",
                        )
                        continue
                    reads |= set(summary.reads)
                    writes |= set(summary.writes)
                    hidden |= set(summary.hidden_writes)
                    locks |= set(summary.locks)
                    commit_kinds |= set(summary.commit_kinds)
                    if not summary.complete:
                        complete = False
                        reasons.append((
                            analysis.abs_line(call),
                            f"delegates to self.{target}(...) whose "
                            "footprint is incomplete",
                        ))
                    for access in summary.accesses:
                        accesses.add(Access(
                            path=access.path,
                            kind=access.kind,
                            line=access.line,
                            method=access.method,
                            locks=access.locks
                            | (must - access.outer_released),
                            outer_released=access.outer_released
                            | outer_may,
                        ))
                    continue
                if isinstance(self._parent_of(analysis, call),
                              ast.YieldFrom):
                    # yield from self.other_object.method(...): a syscall
                    # is never yielded-from, so even an attr named like
                    # one (chunks.write) is cross-object delegation whose
                    # effects live in another class, outside this summary
                    incomplete(
                        call,
                        f"delegates to {ast.unparse(func)}(...) outside "
                        "the class; cross-object effects are not "
                        "summarized",
                    )
                    continue
                if attr in _ACQ_ATTRS or attr in _REL_ATTRS:
                    mode = _ACQ_ATTRS.get(attr) or _REL_ATTRS[attr]
                    paths = _resolve(func.value, env, self._accessors)
                    if paths is TOP or (
                        paths is None
                        and _root_name(func.value) in analysis.taint
                    ):
                        incomplete(
                            call,
                            f"cannot resolve the lock of "
                            f"{ast.unparse(func)}(...)",
                        )
                        continue
                    if isinstance(paths, frozenset):
                        if attr in _ACQ_ATTRS:
                            locks |= {
                                (render_path(p), mode) for p in paths
                            }
                        if _commit_kwarg(call):
                            commit_kinds.add("release-commit")
                    continue
                if attr in _READ_ATTRS or attr in _WRITE_ATTRS:
                    paths = _resolve(func.value, env, self._accessors)
                    if paths is TOP or (
                        paths is None
                        and _root_name(func.value) in analysis.taint
                    ):
                        incomplete(
                            call,
                            f"cannot resolve the target of "
                            f"{ast.unparse(func)}(...)",
                        )
                        continue
                    if not isinstance(paths, frozenset):
                        continue
                    kind = "read" if attr in _READ_ATTRS else "write"
                    if kind == "read":
                        reads |= paths
                    else:
                        writes |= paths
                        if _commit_kwarg(call):
                            commit_kinds.add("write-commit")
                    for p in paths:
                        accesses.add(Access(
                            path=p, kind=kind,
                            line=analysis.abs_line(call),
                            method=name, locks=must,
                            outer_released=outer_may,
                        ))
                    continue
            for yf in _shallow_yield_froms(analysis, node):
                if not isinstance(yf.value, ast.Call):
                    incomplete(
                        yf,
                        "yield from over a non-call expression cannot be "
                        "summarized",
                    )

        # locks still held at normal exits = the method's lock delta
        exit_deltas: Set[tuple] = set()
        for node, kind in analysis.cfg.exits:
            if kind == "raise":
                continue
            for held, outer in flow.get(node, frozenset()):
                exit_deltas.add((held, outer))
        if not exit_deltas:
            exit_deltas.add((frozenset(), frozenset()))

        return EffectSummary(
            method=name,
            role=self._roles.get(name, "helper"),
            reads=frozenset(reads),
            writes=frozenset(writes),
            hidden_writes=frozenset(hidden),
            locks=frozenset(locks),
            commit_kinds=frozenset(commit_kinds),
            accesses=tuple(sorted(
                accesses, key=lambda a: (a.line, a.path, a.kind)
            )),
            exit_deltas=frozenset(exit_deltas),
            complete=complete,
            reasons=tuple(sorted(set(reasons))),
        )

    # -- supporting facts ---------------------------------------------------

    def _parent_of(self, analysis: MethodAnalysis,
                   node: ast.AST) -> Optional[ast.AST]:
        return analysis.parents.get(node)

    def _path_env(self, analysis: MethodAnalysis) -> Dict[str, object]:
        """Fixpoint local-name -> abstract-paths binding (the path-grained
        refinement of the VY001 taint set)."""
        env: Dict[str, object] = {analysis.self_name: frozenset({()})}
        for _ in range(8):
            changed = False

            def bind(name: str, value: object) -> None:
                nonlocal changed
                if value is None:
                    return
                old = env.get(name)
                if value is TOP:
                    if old is not TOP:
                        env[name] = TOP
                        changed = True
                    return
                if old is TOP:
                    return
                merged = (old or frozenset()) | value
                if merged != old:
                    env[name] = merged
                    changed = True

            for node in ast.walk(analysis.fn):
                if isinstance(node, ast.Assign):
                    if isinstance(node.value, ast.Tuple):
                        for target in node.targets:
                            if isinstance(target, ast.Tuple) and len(
                                target.elts
                            ) == len(node.value.elts):
                                for t, v in zip(target.elts,
                                                node.value.elts):
                                    if isinstance(t, ast.Name):
                                        bind(t.id, _resolve(
                                            v, env, self._accessors))
                        continue
                    value = _resolve(node.value, env, self._accessors)
                    tuple_summary = self._tuple_call_summary(node.value)
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            bind(target.id, value)
                        elif isinstance(target, ast.Tuple):
                            if tuple_summary is not None and len(
                                target.elts
                            ) == len(tuple_summary):
                                for t, v in zip(target.elts,
                                                tuple_summary):
                                    if isinstance(t, ast.Name):
                                        bind(t.id, v)
                            else:
                                for t in target.elts:
                                    if isinstance(t, ast.Name):
                                        bind(t.id, value)
                elif isinstance(node, ast.For):
                    iterated = _resolve(node.iter, env, self._accessors)
                    if iterated is TOP:
                        element = TOP
                    elif isinstance(iterated, frozenset):
                        element = frozenset(
                            p + ("[*]",) for p in iterated
                        )
                    else:
                        element = None
                    if isinstance(node.target, ast.Name):
                        bind(node.target.id, element)
                    elif isinstance(node.target, ast.Tuple):
                        for t in node.target.elts:
                            if isinstance(t, ast.Name):
                                bind(t.id, element)
                elif isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        if item.optional_vars is not None and isinstance(
                            item.optional_vars, ast.Name
                        ):
                            bind(item.optional_vars.id, _resolve(
                                item.context_expr, env, self._accessors))
            if not changed:
                break
        return env

    def _tuple_call_summary(
        self, value: ast.AST
    ) -> Optional[Tuple[object, ...]]:
        """``a, b = self.accessor()`` elementwise binding support."""
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and isinstance(value.func.value, ast.Name)
        ):
            return None
        summary = self._accessors.summary(value.func.attr)
        if isinstance(summary.returns, tuple):
            return summary.returns
        return None

    def _node_events(self, analysis: MethodAnalysis, node: Node,
                     env: Dict[str, object]) -> List[tuple]:
        """Ordered lock events of one CFG node."""
        events: List[tuple] = []
        for call in _shallow_yielded_calls(analysis, node):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            attr = func.attr
            if _call_is_ctx(call, analysis.ctx_name, attr):
                continue
            if isinstance(analysis.parents.get(call), ast.YieldFrom) and \
                    isinstance(func.value, ast.Name) and \
                    func.value.id == analysis.self_name:
                events.append(("helper", attr))
                continue
            if attr in _ACQ_ATTRS or attr in _REL_ATTRS:
                paths = _resolve(func.value, env, self._accessors)
                if isinstance(paths, frozenset) and len(paths) == 1:
                    token = (render_path(next(iter(paths))),
                             _ACQ_ATTRS.get(attr) or _REL_ATTRS[attr])
                    events.append((
                        "acq" if attr in _ACQ_ATTRS else "rel", token,
                    ))
                # multi-path / unresolvable lock: no must-held effect
        return events


def _shallow_yielded_calls(analysis: MethodAnalysis,
                           node: Node) -> List[ast.Call]:
    """Yield-driven calls belonging to this CFG node only (compound
    statements contribute just their header expression)."""
    if node.stmt is None or node.kind == "handler":
        return []
    stmt = node.stmt
    if isinstance(stmt, (ast.If, ast.While, ast.For, ast.Try, ast.With)):
        stmt = getattr(stmt, "test", None) or getattr(stmt, "iter", None)
        if stmt is None:
            return []
    return [
        call
        for call in ast.walk(stmt)
        if isinstance(call, ast.Call) and analysis.yielded_call(call)
    ]


def _shallow_yield_froms(analysis: MethodAnalysis,
                         node: Node) -> List[ast.YieldFrom]:
    if node.stmt is None or node.kind == "handler":
        return []
    stmt = node.stmt
    if isinstance(stmt, (ast.If, ast.While, ast.For, ast.Try, ast.With)):
        stmt = getattr(stmt, "test", None) or getattr(stmt, "iter", None)
        if stmt is None:
            return []
    return [n for n in ast.walk(stmt) if isinstance(n, ast.YieldFrom)]


# ---------------------------------------------------------------------------
# Pair classification and the independence matrix
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PairVerdict:
    verdict: str  # independent | conditional | dependent
    reason: str

    def to_dict(self) -> dict:
        return {"verdict": self.verdict, "reason": self.reason}


def classify_pair(a: EffectSummary, b: EffectSummary) -> PairVerdict:
    """Conservative commutativity of two whole operations."""
    if not a.complete:
        return PairVerdict(
            DEPENDENT, f"{a.method} has an incomplete footprint (VY008)"
        )
    if not b.complete:
        return PairVerdict(
            DEPENDENT, f"{b.method} has an incomplete footprint (VY008)"
        )
    starred_only = True
    conflict: Optional[str] = None
    for left, right, label in (
        (a.footprint_writes(), b.footprint_writes() | b.reads, "write"),
        (b.footprint_writes(), a.reads, "write"),
    ):
        for pa in left:
            for pb in right:
                if paths_overlap(pa, pb):
                    conflict = (
                        f"{label} overlap on "
                        f"{render_path(max(pa, pb, key=len))}"
                    )
                    if not _overlap_is_starred(pa, pb):
                        starred_only = False
    for la, ma in a.locks:
        for lb, mb in b.locks:
            if la == lb and not (ma == "r" and mb == "r"):
                conflict = conflict or f"shared lock {la}"
                if "[*]" not in la:
                    starred_only = False
    if conflict is None:
        return PairVerdict(
            INDEPENDENT, "disjoint footprints and locksets"
        )
    if starred_only:
        return PairVerdict(
            CONDITIONAL,
            f"{conflict}; commutes when the operations touch distinct "
            "elements",
        )
    return PairVerdict(DEPENDENT, conflict)


# ---------------------------------------------------------------------------
# VY007 / VY008 passes
# ---------------------------------------------------------------------------


def _literal_string_tuple(classdef: ast.ClassDef,
                          attr: str) -> FrozenSet[str]:
    for stmt in classdef.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == attr for t in stmt.targets
        ):
            continue
        if isinstance(stmt.value, (ast.Tuple, ast.List)):
            return frozenset(
                elt.value
                for elt in stmt.value.elts
                if isinstance(elt, ast.Constant)
                and isinstance(elt.value, str)
            )
    return frozenset()


def _finding(rule_id: str, method: str, file: str, line: int,
             message: str) -> LintFinding:
    rule = RULES[rule_id]
    return LintFinding(
        rule_id=rule_id, severity=rule.severity, method=method,
        file=file, line=line, message=message,
    )


def _vy007_findings(effects: "ClassEffects") -> Iterator[LintFinding]:
    """Static Eraser: every shared field written by some operation must
    have a lock common to all the writes, and every access must
    intersect that candidate set."""
    by_path: Dict[Tuple[str, ...], List[Access]] = {}
    for op in sorted(effects.operations):
        summary = effects.summaries[op]
        for access in summary.accesses:
            by_path.setdefault(access.path, []).append(access)
    for path in sorted(by_path):
        rendered = render_path(path)
        if rendered in effects.atomic_fields:
            continue
        accesses = by_path[path]
        writes = [a for a in accesses if a.kind == "write"]
        if not writes:
            continue
        if not any(a.locks for a in accesses):
            # no access ever holds a lock: there is no lock discipline to
            # be inconsistent with (fully lock-free fields are vetted by
            # the dynamic engines / VYRD_ATOMIC_FIELDS instead)
            continue
        candidate = frozenset.intersection(
            *(frozenset(base for base, _ in a.locks) for a in writes)
        )
        if not candidate:
            first = min(writes, key=lambda a: a.line)
            locksets = sorted({
                "{" + ", ".join(sorted(_render_lock(t)
                                       for t in a.locks)) + "}"
                + f" (line {a.line})"
                for a in writes
            })
            yield _finding(
                "VY007", first.method, effects.file, first.line,
                f"shared field {rendered} is written under "
                f"non-intersecting lock sets: {'; '.join(locksets)}",
            )
            continue
        for access in sorted(accesses, key=lambda a: (a.line, a.kind)):
            held = frozenset(base for base, _ in access.locks)
            if held & candidate:
                continue
            yield _finding(
                "VY007", access.method, effects.file, access.line,
                f"shared field {rendered} is {access.kind} here holding "
                f"{{{', '.join(sorted(_render_lock(t) for t in access.locks)) or ''}}} "
                f"but every write holds "
                f"{{{', '.join(sorted(candidate))}}}; the lock sets never "
                "intersect (static Eraser)",
            )


def _vy008_findings(effects: "ClassEffects") -> Iterator[LintFinding]:
    for op in sorted(effects.operations):
        summary = effects.summaries[op]
        if summary.complete:
            continue
        for line, reason in summary.reasons:
            yield _finding(
                "VY008", op, effects.file, line,
                f"cannot bound the effect footprint of {op}: {reason}; "
                "schedule reduction must treat it as conflicting with "
                "every operation",
            )


# ---------------------------------------------------------------------------
# Class-level driver
# ---------------------------------------------------------------------------


@dataclass
class ClassEffects:
    """The complete static effect analysis of one implementation class."""

    class_name: str
    file: str
    operations: Tuple[str, ...]
    summaries: Dict[str, EffectSummary]
    matrix: Dict[Tuple[str, str], PairVerdict]
    atomic_fields: FrozenSet[str] = frozenset()
    confluent_helpers: FrozenSet[str] = frozenset()
    findings: List[LintFinding] = field(default_factory=list)

    def verdict(self, a: str, b: str) -> str:
        return self.matrix[(min(a, b), max(a, b))].verdict

    def incomplete_operations(self) -> FrozenSet[str]:
        return frozenset(
            op for op in self.operations
            if not self.summaries[op].complete
        )

    def to_dict(self) -> dict:
        return {
            "class": self.class_name,
            "file": self.file,
            "operations": {
                op: self.summaries[op].to_dict() for op in self.operations
            },
            "matrix": {
                f"{a} x {b}": verdict.to_dict()
                for (a, b), verdict in sorted(self.matrix.items())
            },
            "atomic_fields": sorted(self.atomic_fields),
            "confluent_helpers": sorted(self.confluent_helpers),
            "incomplete_operations": sorted(self.incomplete_operations()),
        }


def analyze_class_source(
    source: str,
    *,
    filename: str = "<effects>",
    first_line: int = 1,
    classname: Optional[str] = None,
    operations: Optional[Set[str]] = None,
    observers: Optional[Set[str]] = None,
) -> ClassEffects:
    """Compute effect summaries, the independence matrix and the
    VY007/VY008 findings for one class given its source text."""
    import textwrap

    from .analyzer import (
        _decorated_operations,
        _declared_observers,
    )

    tree = ast.parse(textwrap.dedent(source))
    classdef = None
    for stmt in ast.walk(tree):
        if isinstance(stmt, ast.ClassDef):
            if classname is None or stmt.name == classname:
                classdef = stmt
                break
    if classdef is None:
        raise ValueError(
            f"no class definition{f' {classname!r}' if classname else ''} "
            f"found in {filename}"
        )
    if operations is None:
        operations = _decorated_operations(classdef)
    if observers is None:
        observers = _declared_observers(classdef)
    methods = {
        stmt.name: stmt
        for stmt in classdef.body
        if isinstance(stmt, ast.FunctionDef)
    }
    roles = {
        name: (OBSERVER if name in observers else MUTATOR)
        if name in operations else "helper"
        for name in methods
    }
    confluent = _literal_string_tuple(classdef, "VYRD_CONFLUENT_HELPERS")
    atomic = _literal_string_tuple(classdef, "VYRD_ATOMIC_FIELDS")
    table = EffectTable(
        methods, filename, first_line - 1, roles, confluent,
    )
    ops = tuple(sorted(op for op in operations if op in table.summaries))
    matrix: Dict[Tuple[str, str], PairVerdict] = {}
    for i, a in enumerate(ops):
        for b in ops[i:]:
            matrix[(a, b)] = classify_pair(
                table.summaries[a], table.summaries[b]
            )
    effects = ClassEffects(
        class_name=classdef.name,
        file=filename,
        operations=ops,
        summaries=table.summaries,
        matrix=matrix,
        atomic_fields=atomic,
        confluent_helpers=confluent,
    )
    findings = list(_vy007_findings(effects))
    findings.extend(_vy008_findings(effects))
    # helper accesses inline into several operations; identical findings
    # collapse to one
    findings = sorted(
        set(findings), key=lambda f: (f.file, f.line, f.rule_id, f.message)
    )
    effects.findings = findings
    return effects


def analyze_class(impl, *, observers: Optional[Set[str]] = None) -> ClassEffects:
    """Analyze a live implementation class (or an instance of one)."""
    import inspect

    cls = impl if inspect.isclass(impl) else type(impl)
    try:
        lines, first_line = inspect.getsourcelines(cls)
    except (OSError, TypeError) as exc:
        raise ValueError(
            f"cannot retrieve source for {cls.__name__}: {exc}"
        ) from exc
    filename = inspect.getsourcefile(cls) or "<unknown>"
    ops = {
        name
        for name in dir(cls)
        if getattr(getattr(cls, name, None), "_vyrd_operation", False)
    }
    if observers is None:
        declared = getattr(cls, "VYRD_METHODS", None)
        if isinstance(declared, dict):
            observers = {
                name for name, role in declared.items()
                if role == "observer"
            }
    return analyze_class_source(
        "".join(lines),
        filename=filename,
        first_line=first_line,
        classname=cls.__name__,
        operations=ops or None,
        observers=observers,
    )


def analyze_program(name: str) -> ClassEffects:
    """Analyze the implementation class behind one registry program."""
    from ..harness.workload import PROGRAMS  # late import

    built = PROGRAMS[name].build(False, 1)
    return analyze_class(built.impl)


def effect_findings(
    source: str,
    *,
    filename: str = "<lint>",
    first_line: int = 1,
    classname: Optional[str] = None,
    operations: Optional[Set[str]] = None,
    observers: Optional[Set[str]] = None,
) -> List[LintFinding]:
    """The VY007/VY008 findings alone (what ``lint_class_source`` folds
    into the per-method rule findings)."""
    return analyze_class_source(
        source,
        filename=filename,
        first_line=first_line,
        classname=classname,
        operations=operations,
        observers=observers,
    ).findings
