"""The six rule passes of the static instrumentation analyzer.

Each pass is a function ``(MethodAnalysis) -> Iterator[LintFinding]``
sharing one per-method CFG (:mod:`repro.lint.cfg`) plus two cheap
AST-derived facts:

* the *taint set*: local names bound (transitively) to state reachable
  from ``self``, so that ``slot = self.slots[i]; slot.lock.acquire()``
  is recognized as a kernel-syscall call and ``slot.elt.value = x`` as a
  direct shared write;
* the *commit points* of every statement: yielded calls carrying
  ``commit=True``, ``ctx.commit()``, and ``yield from self.helper(...)``
  delegations whose helper commits (a one-level interprocedural summary
  computed per class).

Rule catalog (see :mod:`repro.lint.model` for severities):

VY001 missing-yield, VY002 commit-reachability, VY003 multi-commit-path,
VY004 commit-block-balance, VY005 unlogged-shared-write, VY006
observer-commits.

``ctx.spawn(...)`` is deliberately *not* part of the syscall surface:
unlike ``ctx.join`` it is a plain call into the kernel (yielding the
returned ``SimThread`` would itself be a kernel type error), so an
unyielded spawn is correct code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .cfg import CFG, Node, build_cfg
from .model import RULES, LintFinding

# attribute calls on self-reachable state that build kernel syscalls
SYSCALL_ATTRS = {"read", "write", "acquire", "release"}
# syscall-building methods of the ThreadCtx handle (ctx.spawn excluded)
CTX_SYSCALLS = {
    "commit",
    "checkpoint",
    "begin_commit_block",
    "end_commit_block",
    "replay",
    "join",
}

MUTATOR = "mutator"
OBSERVER = "observer"

# commit summaries for helper methods
NEVER = "never"
MAY = "may"
ALWAYS = "always"


# ---------------------------------------------------------------------------
# Shared per-method facts
# ---------------------------------------------------------------------------


def _root_name(expr: ast.AST) -> Optional[str]:
    """The base ``Name`` a value chain hangs off (``self.slots[i].lock``
    -> ``self``; ``self.node(nid).record`` -> ``self``)."""
    while True:
        if isinstance(expr, ast.Attribute):
            expr = expr.value
        elif isinstance(expr, ast.Subscript):
            expr = expr.value
        elif isinstance(expr, ast.Call):
            expr = expr.func
        elif isinstance(expr, ast.Name):
            return expr.id
        else:
            return None


def _parent_map(fn: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(fn):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _is_generator(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.FunctionDef) and node is not fn:
            continue  # nested defs have their own yields
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _compute_taint(fn: ast.FunctionDef, self_name: str) -> Set[str]:
    """Local names transitively bound to state reachable from ``self``."""
    taint = {self_name}
    changed = True
    while changed:
        changed = False
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                if _root_name(node.value) in taint:
                    for target in node.targets:
                        changed |= _taint_target(target, taint)
                elif isinstance(node.value, ast.Tuple):
                    for target in node.targets:
                        if isinstance(target, ast.Tuple) and len(
                            target.elts
                        ) == len(node.value.elts):
                            for t, v in zip(target.elts, node.value.elts):
                                if _root_name(v) in taint:
                                    changed |= _taint_target(t, taint)
            elif isinstance(node, ast.For):
                if _root_name(node.iter) in taint:
                    changed |= _taint_target(node.target, taint)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None and _root_name(
                        item.context_expr
                    ) in taint:
                        changed |= _taint_target(item.optional_vars, taint)
    return taint


def _taint_target(target: ast.AST, taint: Set[str]) -> bool:
    changed = False
    if isinstance(target, ast.Name) and target.id not in taint:
        taint.add(target.id)
        changed = True
    elif isinstance(target, ast.Tuple):
        for elt in target.elts:
            changed |= _taint_target(elt, taint)
    return changed


def _call_is_ctx(call: ast.Call, ctx_name: Optional[str], attr: str) -> bool:
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr == attr
        and isinstance(call.func.value, ast.Name)
        and call.func.value.id == ctx_name
    )


def _commit_kwarg(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "commit":
            return isinstance(keyword.value, ast.Constant) and bool(
                keyword.value.value
            )
    return False


def _forwards_commit_flag(call: ast.Call) -> bool:
    """``yield from self.helper(..., commit_last=True)``: the commit action
    rides inside the helper, switched on by a constant-true flag whose
    name starts with ``commit``."""
    return any(
        keyword.arg is not None
        and keyword.arg.startswith("commit")
        and isinstance(keyword.value, ast.Constant)
        and bool(keyword.value.value)
        for keyword in call.keywords
    )


def _commit_positional(call: ast.Call, ctx_name: Optional[str]) -> bool:
    """``ctx.end_commit_block(True)`` / ``ctx.replay(tag, payload, True)``."""
    if _call_is_ctx(call, ctx_name, "end_commit_block") and call.args:
        flag = call.args[0]
        return isinstance(flag, ast.Constant) and bool(flag.value)
    if _call_is_ctx(call, ctx_name, "replay") and len(call.args) >= 3:
        flag = call.args[2]
        return isinstance(flag, ast.Constant) and bool(flag.value)
    return False


@dataclass
class MethodAnalysis:
    """One method's AST plus the facts every rule pass shares."""

    fn: ast.FunctionDef
    role: str  # "mutator" | "observer" | "helper"
    file: str
    line_offset: int
    summaries: "SummaryTable"
    cfg: CFG = field(init=False)
    parents: Dict[ast.AST, ast.AST] = field(init=False)
    taint: Set[str] = field(init=False)

    def __post_init__(self) -> None:
        args = self.fn.args.args
        self.self_name = args[0].arg if args else "self"
        self.ctx_name = args[1].arg if len(args) > 1 else None
        self.cfg = build_cfg(self.fn)
        self.parents = _parent_map(self.fn)
        self.taint = _compute_taint(self.fn, self.self_name)

    @property
    def name(self) -> str:
        return self.fn.name

    def abs_line(self, node: ast.AST) -> int:
        return getattr(node, "lineno", self.fn.lineno) + self.line_offset

    def finding(self, rule_id: str, node: ast.AST, message: str) -> LintFinding:
        rule = RULES[rule_id]
        return LintFinding(
            rule_id=rule_id,
            severity=rule.severity,
            method=self.name,
            file=self.file,
            line=self.abs_line(node),
            message=message,
        )

    # -- yielded calls and commit points -----------------------------------

    def yielded_call(self, call: ast.Call) -> bool:
        parent = self.parents.get(call)
        return (
            isinstance(parent, (ast.Yield, ast.YieldFrom))
            and parent.value is call
        )

    def yielded_ctx_calls(self, stmt: ast.AST, attr: str) -> List[ast.Call]:
        return [
            node
            for node in ast.walk(stmt)
            if isinstance(node, ast.Call)
            and _call_is_ctx(node, self.ctx_name, attr)
            and self.yielded_call(node)
        ]

    def commit_points(self, stmt: ast.AST) -> Tuple[int, int]:
        """(definite, may) commit points logged by executing ``stmt``.

        Only *yielded* calls count: an unyielded ``ctx.commit()`` never
        reaches the kernel (that is VY001's finding, not a commit).
        """
        definite = 0
        may = 0
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call) or not self.yielded_call(node):
                continue
            if _commit_kwarg(node) or _commit_positional(node, self.ctx_name):
                definite += 1
            elif _call_is_ctx(node, self.ctx_name, "commit"):
                definite += 1
            elif (
                isinstance(self.parents.get(node), ast.YieldFrom)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == self.self_name
            ):
                if node.func.attr == self.fn.name:
                    # direct recursion: the execution continues through
                    # this very method, whose other paths are checked
                    definite += 1
                elif _forwards_commit_flag(node):
                    definite += 1
                else:
                    summary = self.summaries.commit_summary(node.func.attr)
                    if summary == ALWAYS:
                        definite += 1
                    elif summary == MAY:
                        may += 1
        return definite, may

    def node_commits(self, node: Node) -> Tuple[int, int]:
        if node.stmt is None or node.kind == "handler":
            return 0, 0
        return self.commit_points_shallow(node.stmt)

    def commit_points_shallow(self, stmt: ast.AST) -> Tuple[int, int]:
        """Commit points of one CFG node, not descending into compound
        statements' bodies (those are separate CFG nodes)."""
        if isinstance(
            stmt, (ast.If, ast.While, ast.For, ast.Try, ast.With)
        ):
            # only the header expression belongs to this node
            header = getattr(stmt, "test", None) or getattr(stmt, "iter", None)
            if header is None:
                return 0, 0
            return self.commit_points(header)
        return self.commit_points(stmt)


# ---------------------------------------------------------------------------
# Helper commit summaries (one-level interprocedural)
# ---------------------------------------------------------------------------


class SummaryTable:
    """Lazily computed ``helper name -> never | may | always`` commit
    summaries for the methods of one class."""

    def __init__(self, methods: Dict[str, ast.FunctionDef], file: str,
                 line_offset: int):
        self._methods = methods
        self._file = file
        self._line_offset = line_offset
        self._memo: Dict[str, str] = {}
        self._in_progress: Set[str] = set()

    def commit_summary(self, name: str) -> str:
        if name in self._memo:
            return self._memo[name]
        fn = self._methods.get(name)
        if fn is None or name in self._in_progress:
            return MAY  # unknown or recursive: assume it may commit
        self._in_progress.add(name)
        try:
            analysis = MethodAnalysis(
                fn, "helper", self._file, self._line_offset, self
            )
            summary = self._summarize(analysis)
        finally:
            self._in_progress.discard(name)
        self._memo[name] = summary
        return summary

    @staticmethod
    def _summarize(analysis: MethodAnalysis) -> str:
        commits = {
            node
            for node in analysis.cfg.nodes
            if analysis.node_commits(node)[0] > 0
        }
        maybe = any(
            analysis.node_commits(node)[1] > 0 for node in analysis.cfg.nodes
        )
        if not commits:
            return MAY if maybe else NEVER
        if _path_avoiding(analysis.cfg, commits):
            return MAY
        return ALWAYS


def _path_avoiding(cfg: CFG, blocked: Set[Node]) -> bool:
    """Is a normal exit (return / fall-off) reachable from entry without
    executing any node in ``blocked``?"""
    exits = {node for node, kind in cfg.exits if kind != "raise"}
    stack = [cfg.entry]
    seen = {cfg.entry}
    while stack:
        node = stack.pop()
        if node in exits:
            return True
        for succ in cfg.succ[node]:
            if succ not in seen and succ not in blocked:
                seen.add(succ)
                stack.append(succ)
    return False


# ---------------------------------------------------------------------------
# VY001 missing-yield
# ---------------------------------------------------------------------------


def check_missing_yield(analysis: MethodAnalysis) -> Iterator[LintFinding]:
    for node in ast.walk(analysis.fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        surface = None
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == analysis.ctx_name
            and func.attr in CTX_SYSCALLS
        ):
            surface = f"{analysis.ctx_name}.{func.attr}(...)"
        elif (
            func.attr in SYSCALL_ATTRS
            and _root_name(func.value) in analysis.taint
        ):
            surface = f"{ast.unparse(func)}(...)"
        if surface is None or analysis.yielded_call(node):
            continue
        yield analysis.finding(
            "VY001",
            node,
            f"{surface} is a kernel syscall but is not driven by "
            "yield / yield from; the call has no effect on the "
            "simulated run or the log",
        )


# ---------------------------------------------------------------------------
# VY002 commit-reachability / VY003 multi-commit-path
# ---------------------------------------------------------------------------


def check_commit_reachability(analysis: MethodAnalysis) -> Iterator[LintFinding]:
    if analysis.role != MUTATOR:
        return
    commits = {
        node
        for node in analysis.cfg.nodes
        if analysis.node_commits(node)[0] > 0
    }
    if not _reach_exit_avoiding(analysis.cfg, commits):
        return
    exit_node = _first_uncommitted_exit(analysis.cfg, commits)
    where = exit_node if exit_node is not None else analysis.fn
    yield analysis.finding(
        "VY002",
        where.stmt if isinstance(where, Node) and where.stmt else analysis.fn,
        "mutator has a path from entry to return that crosses no commit "
        "point (commit=True keyword or yielded ctx.commit()); executions "
        "along it never appear in the commit-order witness",
    )


def _reach_exit_avoiding(cfg: CFG, blocked: Set[Node]) -> bool:
    return _path_avoiding(cfg, blocked)


def _first_uncommitted_exit(cfg: CFG, blocked: Set[Node]) -> Optional[Node]:
    exits = {node for node, kind in cfg.exits if kind != "raise"}
    stack = [cfg.entry]
    seen = {cfg.entry}
    while stack:
        node = stack.pop()
        if node in exits:
            return node
        for succ in sorted(cfg.succ[node], key=lambda n: n.index):
            if succ not in seen and succ not in blocked:
                seen.add(succ)
                stack.append(succ)
    return None


def check_multi_commit(analysis: MethodAnalysis) -> Iterator[LintFinding]:
    if analysis.role != MUTATOR:
        return
    for stmt in ast.walk(analysis.fn):
        if analysis.yielded_ctx_calls(stmt, "begin_commit_block"):
            return  # commit blocks legitimately contain internal commits
    counts: Dict[Node, Tuple[int, int]] = {
        node: analysis.node_commits(node) for node in analysis.cfg.nodes
    }

    def transfer(node: Node, state: frozenset) -> frozenset:
        definite, may = counts[node]
        out = {min(c + definite, 2) for c in state}
        if may:
            out |= {min(c + definite + may, 2) for c in state}
        return frozenset(out)

    out = analysis.cfg.forward(frozenset({0}), transfer)
    reported: Set[int] = set()
    for node in analysis.cfg.nodes:
        definite, may = counts[node]
        if definite + may == 0:
            continue
        already = analysis.cfg.in_state(node, out)
        if any(c >= 1 for c in already) and node.line not in reported:
            reported.add(node.line)
            yield analysis.finding(
                "VY003",
                node.stmt,
                "a path through this mutator already logged a commit "
                "action before this commit point; one execution would "
                "commit more than once (open a commit block if the "
                "internal commits are intentional)",
            )


# ---------------------------------------------------------------------------
# VY004 commit-block balance
# ---------------------------------------------------------------------------


def check_commit_block_balance(analysis: MethodAnalysis) -> Iterator[LintFinding]:
    begins: Dict[Node, int] = {}
    ends: Dict[Node, int] = {}
    for node in analysis.cfg.nodes:
        if node.stmt is None or node.kind == "handler":
            continue
        stmt = node.stmt
        if isinstance(stmt, (ast.If, ast.While, ast.For, ast.Try, ast.With)):
            continue
        begins[node] = len(
            analysis.yielded_ctx_calls(stmt, "begin_commit_block")
        )
        ends[node] = len(analysis.yielded_ctx_calls(stmt, "end_commit_block"))
    if not any(begins.values()) and not any(ends.values()):
        return

    findings: List[LintFinding] = []

    def transfer(node: Node, state: frozenset) -> frozenset:
        depths = set(state)
        for _ in range(begins.get(node, 0)):
            depths = {min(d + 1, 2) for d in depths}
        for _ in range(ends.get(node, 0)):
            depths = {max(d - 1, 0) for d in depths}
        return frozenset(depths)

    out = analysis.cfg.forward(frozenset({0}), transfer)
    for node in analysis.cfg.nodes:
        state = analysis.cfg.in_state(node, out)
        if not state:
            continue  # unreachable
        if begins.get(node, 0) and any(d >= 1 for d in state):
            findings.append(
                analysis.finding(
                    "VY004",
                    node.stmt,
                    "begin_commit_block while a commit block is already "
                    "open on some path; blocks must not nest",
                )
            )
        if ends.get(node, 0) and any(d == 0 for d in state):
            findings.append(
                analysis.finding(
                    "VY004",
                    node.stmt,
                    "end_commit_block without a matching "
                    "begin_commit_block on some path",
                )
            )
    for node, kind in analysis.cfg.exits:
        if not out.get(node):
            continue  # unreachable exit
        if any(d >= 1 for d in out[node]):
            via = (
                "an exception edge"
                if kind == "raise"
                else "a return path" if kind == "return" else "a fall-off path"
            )
            findings.append(
                analysis.finding(
                    "VY004",
                    node.stmt if node.stmt is not None else analysis.fn,
                    f"commit block is still open when the method exits via "
                    f"{via}; every path must close it",
                )
            )
    seen: Set[Tuple[int, str]] = set()
    for finding in findings:
        key = (finding.line, finding.message)
        if key not in seen:
            seen.add(key)
            yield finding


# ---------------------------------------------------------------------------
# VY005 unlogged-shared-write
# ---------------------------------------------------------------------------


def check_unlogged_shared_write(analysis: MethodAnalysis) -> Iterator[LintFinding]:
    for node in ast.walk(analysis.fn):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = node.targets
        for target in targets:
            for leaf in _flatten_targets(target):
                if not isinstance(leaf, (ast.Attribute, ast.Subscript)):
                    continue
                if _root_name(leaf) in analysis.taint:
                    yield analysis.finding(
                        "VY005",
                        node,
                        f"direct write to {ast.unparse(leaf)} mutates "
                        "state reachable from self without a traced "
                        "cell.write() syscall; the checker and the log "
                        "never see it",
                    )


def _flatten_targets(target: ast.AST) -> Iterator[ast.AST]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _flatten_targets(elt)
    else:
        yield target


# ---------------------------------------------------------------------------
# VY006 observer-commits
# ---------------------------------------------------------------------------


def check_observer_commits(analysis: MethodAnalysis) -> Iterator[LintFinding]:
    if analysis.role != OBSERVER:
        return
    for node in analysis.cfg.nodes:
        definite, may = analysis.node_commits(node)
        if definite or may:
            qualifier = "" if definite else "may "
            yield analysis.finding(
                "VY006",
                node.stmt,
                f"method is declared an observer but {qualifier}logs a "
                "commit action here; observers are placed by their "
                "read window, not by commit order",
            )


OPERATION_PASSES = (
    check_missing_yield,
    check_commit_reachability,
    check_multi_commit,
    check_commit_block_balance,
    check_unlogged_shared_write,
    check_observer_commits,
)

# helper generators (compression passes, internal subroutines) still must
# yield their syscalls, keep commit blocks balanced and go through traced
# cells -- but commit placement is judged at the operation that calls them
HELPER_PASSES = (
    check_missing_yield,
    check_commit_block_balance,
    check_unlogged_shared_write,
)
