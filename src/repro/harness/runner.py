"""Experiment drivers behind the paper's Tables 1-3.

* :func:`run_program` -- execute one harness workload (section 7.1) on a
  fresh program instance under a seeded scheduler, producing a VYRD log.
* :func:`detection_experiment` -- Table 1: methods executed before the first
  error is detected, I/O vs view refinement, plus the view/I-O checker CPU
  ratio *on the same trace* (the paper's last column).
* :func:`logging_overhead_experiment` -- Table 2: run time with no logging
  vs I/O-refinement logging vs view-refinement logging.  The tracer never
  influences scheduling, so all three timings replay the *identical*
  interleaving.
* :func:`breakdown_experiment` -- Table 3: program alone / program+logging /
  program+logging+online VYRD / offline VYRD alone.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Union

from ..concurrency import Kernel
from ..concurrency.explore import ExplorationResult
from ..concurrency.parallel import (
    RefinementViolation,
    parallel_exhaustive,
    parallel_swarm,
)
from ..core import CheckOutcome, Vyrd
from ..obs import Recorder
from .metrics import mean
from .workload import PROGRAMS, BuiltProgram, Program


def _resolve(program: Union[str, Program]) -> Program:
    if isinstance(program, Program):
        return program
    return PROGRAMS[program]


@dataclass
class RunResult:
    """One executed workload plus its verification session."""

    program: Program
    built: BuiltProgram
    vyrd: Vyrd
    kernel: Kernel
    run_cpu: float
    online_outcome: Optional[CheckOutcome] = None
    race_outcome: Optional[object] = None  # RaceOutcome when races enabled
    lint_findings: tuple = ()  # LintFindings when the lint pre-flight ran
    obs: Optional[Recorder] = None  # the recorder run_program was given
    linz_outcome: Optional[object] = None  # LinzOutcome when linearizability on

    @property
    def log(self):
        return self.vyrd.log


def run_program(
    program: Union[str, Program],
    buggy: bool = False,
    num_threads: int = 4,
    calls_per_thread: int = 50,
    seed: int = 0,
    mode: str = "view",
    log_level: Optional[str] = None,
    online: bool = False,
    max_steps: int = 20_000_000,
    scheduler_factory=None,
    log_locks: bool = False,
    log_reads: bool = False,
    races=None,
    faults=None,
    lint: Optional[str] = None,
    linearizability=False,
    obs: Optional[Recorder] = None,
    log=None,
    daemons: bool = True,
) -> RunResult:
    """Build, run and (optionally online-) verify one program instance.

    ``scheduler_factory(seed)`` overrides the default seeded random
    scheduler (e.g. with :class:`~repro.concurrency.PCTScheduler` for the
    scheduling ablation).  ``log_locks``/``log_reads`` additionally record
    the events the :mod:`repro.atomicity` baseline needs.  ``races``
    (``"hb"``/``"lockset"``/``"both"``) runs the :mod:`repro.races`
    detectors over the same log -- incrementally when ``online=True``,
    offline otherwise -- and fills ``RunResult.race_outcome``.  ``faults``
    (a :class:`repro.faults.FaultPlan` with ``slow_io`` faults) wraps the
    tracer in a :class:`repro.faults.LatencyTracer`, simulating a slow log
    device; the schedule -- and hence the log -- is unaffected.  ``lint``
    (``"warn"``/``"error"``) statically checks the implementation's
    instrumentation annotations *before* the run (:mod:`repro.lint`) and
    raises :class:`repro.lint.LintError` when any finding at or above that
    severity survives suppression; all findings land in
    ``RunResult.lint_findings``.  ``linearizability`` (``True`` or a spec
    factory) additionally runs the annotation-free linearization search
    (:mod:`repro.linz`) over the completed log and fills
    ``RunResult.linz_outcome``.  ``obs`` (a
    :class:`repro.obs.MetricsRecorder`) profiles the whole pipeline: it is
    threaded through the session, the kernel (whose step counter becomes
    the trace clock) and the harness phases, and comes back on
    ``RunResult.obs``.  ``log`` (a :class:`repro.core.Log` or subclass)
    replaces the session's in-memory log -- the streaming service passes a
    shard tee here so every append is also spooled to durable shard
    files.  ``daemons=False`` skips spawning the workload's background
    threads (compression, flushers): exhaustive exploration needs a finite
    schedule tree, and an always-runnable daemon makes it infinite."""
    program = _resolve(program)
    built = program.build(buggy, num_threads)
    lint_findings: tuple = ()
    if lint is not None:
        from ..lint import LintError, lint_class, severity_at_least

        if lint not in ("warn", "error"):
            raise ValueError(f"lint must be 'warn' or 'error', not {lint!r}")
        lint_findings = tuple(lint_class(built.impl))
        gating = [
            finding for finding in lint_findings
            if severity_at_least(finding.severity, lint)
        ]
        if gating:
            raise LintError(gating)
    vyrd = Vyrd(
        spec_factory=built.spec_factory,
        mode=mode,
        impl_view_factory=built.view_factory,
        invariants=built.invariants,
        replay_registry=built.replay_registry,
        log_level=log_level,
        log_locks=log_locks,
        log_reads=log_reads,
        races=races,
        atomic_locs=program.atomic_locs,
        linearizability=linearizability,
        obs=obs,
        log=log,
    )
    scheduler = scheduler_factory(seed) if scheduler_factory is not None else None
    tracer = vyrd.tracer
    if faults is not None and getattr(faults, "tracer_faults", ()):
        from ..faults import LatencyTracer  # late import: faults -> harness

        tracer = LatencyTracer(tracer, faults)
    kernel = Kernel(
        scheduler=scheduler, seed=seed, tracer=tracer, max_steps=max_steps,
        obs=obs,
    )
    vds = vyrd.wrap(built.impl)
    verifier = vyrd.start_online(kernel) if online else None
    for index in range(num_threads):
        body = built.make_worker(
            vds, random.Random(seed * 131 + index), index, calls_per_thread
        )
        kernel.spawn(body, name=f"app-{index}")
    for daemon in built.daemons if daemons else ():
        kernel.spawn(daemon, daemon=True)
    start = time.process_time()
    kernel.run()
    run_cpu = time.process_time() - start
    obs_rec = vyrd.obs
    if obs_rec.enabled:
        with obs_rec.span("harness.finalize", cat="harness"):
            online_outcome = verifier.finalize() if verifier is not None else None
            race_outcome = None
            if races:
                race_outcome = (
                    verifier.finalize_races() if verifier is not None
                    else vyrd.check_races()
                )
            linz_outcome = (
                vyrd.check_linearizability() if vyrd.linearizability else None
            )
    else:
        online_outcome = verifier.finalize() if verifier is not None else None
        race_outcome = None
        if races:
            race_outcome = (
                verifier.finalize_races() if verifier is not None
                else vyrd.check_races()
            )
        linz_outcome = (
            vyrd.check_linearizability() if vyrd.linearizability else None
        )
    return RunResult(
        program, built, vyrd, kernel, run_cpu, online_outcome, race_outcome,
        lint_findings, obs, linz_outcome,
    )


# ---------------------------------------------------------------------------
# Exploration campaigns over registry workloads
# ---------------------------------------------------------------------------


def log_hb_fingerprint(log) -> str:
    """Canonical digest of a run's happens-before order (its Mazurkiewicz
    trace under the reduction's independence relation).

    Two schedules that differ only by swaps of independent steps produce the
    same fingerprint; schedules that reorder anything the reduction treats
    as dependent -- same-cell write/read-write order, per-lock acquisition
    order, the global commit (linearization) order, per-thread program order
    -- produce different ones.  The schedule-reduction equivalence gate
    compares the *sets* of fingerprints reached by reduced and unreduced
    campaigns: equality means the reduced campaign covered every distinct
    HB order.  Requires a log recorded with ``log_locks``/``log_reads``
    (see ``ProgramSpec.fingerprint``).
    """
    from ..core.actions import (
        AcquireAction,
        CallAction,
        CommitAction,
        ReadAction,
        ReleaseAction,
        ReturnAction,
        WriteAction,
    )

    per_tid: dict = {}
    per_loc: dict = {}
    per_lock: dict = {}
    commits: list = []
    methods: dict = {}
    pending_readers: dict = {}

    def tid_seq(tid):
        return per_tid.setdefault(tid, [])

    for action in log:
        tid = action.tid
        if isinstance(action, CallAction):
            methods[(tid, action.op_id)] = action.method
            tid_seq(tid).append(("call", action.method, repr(action.args)))
        elif isinstance(action, ReturnAction):
            tid_seq(tid).append(("ret", action.method, repr(action.result)))
        elif isinstance(action, WriteAction):
            tid_seq(tid).append(("w", action.loc, repr(action.new)))
            stream = per_loc.setdefault(action.loc, [])
            readers = pending_readers.pop(action.loc, None)
            if readers:
                stream.append(("readers", tuple(sorted(readers))))
            stream.append(("w", tid, repr(action.new)))
        elif isinstance(action, ReadAction):
            # reads between two writes commute, so they form a set
            tid_seq(tid).append(("r", action.loc))
            pending_readers.setdefault(action.loc, set()).add(tid)
        elif isinstance(action, AcquireAction):
            tid_seq(tid).append(("acq", action.lock))
            per_lock.setdefault(action.lock, []).append(tid)
        elif isinstance(action, ReleaseAction):
            tid_seq(tid).append(("rel", action.lock))
        elif isinstance(action, CommitAction):
            tid_seq(tid).append(("commit",))
            commits.append((tid, methods.get((tid, action.op_id))))
        else:
            tid_seq(tid).append((type(action).__name__,))
    for loc, readers in pending_readers.items():
        per_loc.setdefault(loc, []).append(("readers", tuple(sorted(readers))))
    canonical = (
        sorted(per_tid.items()),
        sorted(per_loc.items()),
        sorted(per_lock.items()),
        tuple(commits),
    )
    return hashlib.sha256(repr(canonical).encode()).hexdigest()


@dataclass(frozen=True)
class ProgramSpec:
    """A picklable description of one workload-registry program run.

    Closures do not cross process boundaries, so the multi-process explorers
    (:mod:`repro.concurrency.parallel`) take this spec instead: the registry
    *name* plus the configuration needed to rebuild the workload.  Each
    worker resolves it to a fresh kernel + data structure via
    :meth:`resolve_program`, runs the workload under the explorer-supplied
    scheduler, and checks refinement offline.

    ``workload_seed`` fixes the operation mix (which methods each thread
    calls, with which arguments); only the *schedule* varies between runs --
    the paper's "large numbers of repetitions of the same experiment".

    ``metrics=True`` accumulates deterministic observability counters and
    histograms (:mod:`repro.obs`) across every run the resolved program
    executes; the explorers merge the per-worker snapshots into
    ``ExplorationResult.metrics``.  Only the deterministic part crosses
    process boundaries, so campaign metrics are identical however the work
    was sharded (and identical to a serial run).
    """

    program: str
    buggy: bool = False
    num_threads: int = 2
    calls_per_thread: int = 4
    workload_seed: int = 0
    mode: str = "view"
    max_steps: int = 20_000_000
    metrics: bool = False
    # Exhaustive exploration needs a finite schedule tree; always-runnable
    # background threads (compression, flushers) make it infinite, so
    # daemon-free configs are the exhaustive/reduction gate shape.
    daemons: bool = True
    # fingerprint=True records locks+reads and makes the success outcome the
    # run's HB fingerprint (see log_hb_fingerprint) instead of the log
    # length, so campaign outcome sets enumerate the distinct HB orders.
    fingerprint: bool = False

    def resolve_program(self):
        """Build the ``program(scheduler) -> outcome`` callable (in-worker).

        When ``metrics`` is set, the callable carries the accumulating
        recorder as ``program.obs_recorder`` (events off: only counters and
        histograms, the mergeable deterministic part).
        """
        spec = self
        recorder = None
        if spec.metrics:
            from ..obs import MetricsRecorder

            recorder = MetricsRecorder(max_events=0)

        def program(scheduler):
            result = run_program(
                spec.program,
                buggy=spec.buggy,
                num_threads=spec.num_threads,
                calls_per_thread=spec.calls_per_thread,
                seed=spec.workload_seed,
                mode=spec.mode,
                max_steps=spec.max_steps,
                scheduler_factory=lambda _seed: scheduler,
                obs=recorder,
                daemons=spec.daemons,
                log_locks=spec.fingerprint,
                log_reads=spec.fingerprint,
            )
            outcome = result.vyrd.check_offline()
            if not outcome.ok:
                raise RefinementViolation(outcome.summary(), details=outcome.to_dict())
            if spec.fingerprint:
                return ("ok", log_hb_fingerprint(result.log))
            return ("ok", len(result.log))

        program.obs_recorder = recorder
        return program


def explore_program(
    program: Union[str, Program],
    mode: str = "swarm",
    jobs: Optional[int] = 1,
    num_runs: int = 100,
    base_seed: int = 0,
    max_runs: int = 10_000,
    stop_on_failure: bool = False,
    buggy: bool = False,
    num_threads: int = 2,
    calls_per_thread: int = 4,
    workload_seed: int = 0,
    check_mode: str = "view",
    metrics: bool = False,
    reduce: Optional[str] = None,
    daemons: bool = True,
    fingerprint: bool = False,
) -> ExplorationResult:
    """Run an exploration campaign over one registry program.

    ``mode="swarm"`` runs ``num_runs`` seeded random schedules
    (``base_seed`` onward); ``mode="exhaustive"`` enumerates the schedule
    tree up to ``max_runs``.  ``jobs`` fans the campaign out across worker
    processes (``None`` / ``0`` = all CPUs, ``1`` = serial in-process).
    ``metrics=True`` merges per-worker observability counters into
    ``ExplorationResult.metrics``.

    ``reduce="static"`` (exhaustive mode only) prunes schedules that are
    sleep-set redundant under the static effect analysis of the program's
    implementation class (:func:`repro.lint.effects.analyze_program`);
    pruned subtree roots are reported on ``result.pruned``/``skipped``.
    ``daemons=False`` runs without the workload's background threads (a
    finite schedule tree, required for exhaustion); ``fingerprint=True``
    makes successful outcomes HB fingerprints (see
    :func:`log_hb_fingerprint`).
    """
    spec = ProgramSpec(
        _resolve(program).name,
        buggy=buggy,
        num_threads=num_threads,
        calls_per_thread=calls_per_thread,
        workload_seed=workload_seed,
        mode=check_mode,
        metrics=metrics,
        daemons=daemons,
        fingerprint=fingerprint,
    )
    reducer = None
    if reduce is not None:
        if reduce != "static":
            raise ValueError(f"unknown reduction {reduce!r} (only 'static')")
        if mode != "exhaustive":
            raise ValueError("--reduce static requires exhaustive mode")
        from ..concurrency.reduction import StaticReducer
        from ..lint.effects import analyze_program

        reducer = StaticReducer.from_effects(analyze_program(spec.program))
    if mode == "swarm":
        return parallel_swarm(
            spec,
            num_runs=num_runs,
            base_seed=base_seed,
            stop_on_failure=stop_on_failure,
            jobs=jobs,
        )
    if mode == "exhaustive":
        return parallel_exhaustive(
            spec,
            max_runs=max_runs,
            stop_on_failure=stop_on_failure,
            jobs=jobs,
            reducer=reducer,
        )
    raise ValueError(f"unknown exploration mode {mode!r} (swarm or exhaustive)")


# ---------------------------------------------------------------------------
# Table 1: time to detection
# ---------------------------------------------------------------------------


@dataclass
class DetectionResult:
    """Aggregated Table 1 row for one (program, thread count)."""

    program: str
    bug: str
    num_threads: int
    runs: int = 0
    io_detections: List[int] = field(default_factory=list)
    view_detections: List[int] = field(default_factory=list)
    io_cpu: float = 0.0
    view_cpu: float = 0.0

    @property
    def io_mean(self) -> Optional[float]:
        return mean(self.io_detections)

    @property
    def view_mean(self) -> Optional[float]:
        return mean(self.view_detections)

    @property
    def cpu_ratio(self) -> Optional[float]:
        if self.io_cpu <= 0:
            return None
        return self.view_cpu / self.io_cpu


def detection_experiment(
    program: Union[str, Program],
    num_threads: int = 4,
    calls_per_thread: int = 80,
    seeds=range(8),
    require_both: bool = False,
) -> DetectionResult:
    """Run the buggy program under several seeds; check each trace in both
    modes and aggregate methods-to-detection and checker CPU times.

    A seed that triggers the bug contributes its detection counts; a seed
    where a mode finds nothing contributes nothing to that mode's mean (the
    paper averages over runs of the same experiment; rare-triggering bugs
    simply need more seeds).  ``require_both=True`` keeps only seeds where
    *both* modes detect, making the means directly comparable.

    The checker CPU ratio (the paper's last column: view-mode VYRD time over
    I/O-mode VYRD time on the same trace) is measured on a *correct* run of
    the same workload, so both checkers process the complete trace rather
    than stopping at the first violation.
    """
    program = _resolve(program)
    result = DetectionResult(program.name, program.bug, num_threads)
    seeds = list(seeds)
    for seed in seeds:
        run = run_program(
            program,
            buggy=True,
            num_threads=num_threads,
            calls_per_thread=calls_per_thread,
            seed=seed,
            mode="view",
            log_level="view",
        )
        result.runs += 1
        io_outcome = run.vyrd.check_offline_with_mode("io")
        view_outcome = run.vyrd.check_offline_with_mode("view")
        io_hit = io_outcome.detection_method_count if not io_outcome.ok else None
        view_hit = view_outcome.detection_method_count if not view_outcome.ok else None
        if require_both and (io_hit is None or view_hit is None):
            continue
        if io_hit is not None:
            result.io_detections.append(io_hit)
        if view_hit is not None:
            result.view_detections.append(view_hit)
    # checker cost ratio on a complete (violation-free) trace
    ratio_seed = (max(seeds) if seeds else 0) + 1
    clean = run_program(
        program,
        buggy=False,
        num_threads=num_threads,
        calls_per_thread=calls_per_thread,
        seed=ratio_seed,
        mode="view",
        log_level="view",
    )
    start = time.process_time()
    clean.vyrd.check_offline_with_mode("io")
    result.io_cpu = time.process_time() - start
    start = time.process_time()
    clean.vyrd.check_offline_with_mode("view")
    result.view_cpu = time.process_time() - start
    return result


# ---------------------------------------------------------------------------
# Table 2: logging overhead
# ---------------------------------------------------------------------------


@dataclass
class LoggingOverheadResult:
    program: str
    num_threads: int
    calls_per_thread: int
    program_alone: float = 0.0
    io_logging: float = 0.0    # extra time with call/return/commit logging
    view_logging: float = 0.0  # extra time with full view-level logging

    @property
    def io_total(self) -> float:
        return self.program_alone + self.io_logging

    @property
    def view_total(self) -> float:
        return self.program_alone + self.view_logging


def logging_overhead_experiment(
    program: Union[str, Program],
    num_threads: int = 8,
    calls_per_thread: int = 60,
    seeds=range(3),
    buggy: bool = False,
) -> LoggingOverheadResult:
    """Table 2: the cost of producing the log, by granularity.

    Reports, like the paper, the *program alone* time and the additional
    overhead of I/O-level and view-level logging (same seeds -> identical
    schedules, since logging does not perturb scheduling)."""
    program = _resolve(program)
    result = LoggingOverheadResult(program.name, num_threads, calls_per_thread)
    for seed in seeds:
        alone = run_program(program, buggy, num_threads, calls_per_thread, seed,
                            log_level="none").run_cpu
        io_run = run_program(program, buggy, num_threads, calls_per_thread, seed,
                             log_level="io").run_cpu
        view_run = run_program(program, buggy, num_threads, calls_per_thread, seed,
                               log_level="view").run_cpu
        result.program_alone += alone
        result.io_logging += max(0.0, io_run - alone)
        result.view_logging += max(0.0, view_run - alone)
    return result


# ---------------------------------------------------------------------------
# Table 3: running time breakdown
# ---------------------------------------------------------------------------


@dataclass
class BreakdownResult:
    program: str
    num_threads: int
    calls_per_thread: int
    prog_alone: float = 0.0
    prog_logging: float = 0.0
    prog_logging_online_vyrd: float = 0.0
    vyrd_offline: float = 0.0


def breakdown_experiment(
    program: Union[str, Program],
    num_threads: int = 10,
    calls_per_thread: int = 50,
    seeds=range(3),
) -> BreakdownResult:
    """Table 3: where the time goes, online vs offline checking."""
    program = _resolve(program)
    result = BreakdownResult(program.name, num_threads, calls_per_thread)
    for seed in seeds:
        result.prog_alone += run_program(
            program, False, num_threads, calls_per_thread, seed, log_level="none"
        ).run_cpu
        logged = run_program(
            program, False, num_threads, calls_per_thread, seed, log_level="view"
        )
        result.prog_logging += logged.run_cpu
        start = time.process_time()
        logged.vyrd.check_offline()
        result.vyrd_offline += time.process_time() - start
        online = run_program(
            program, False, num_threads, calls_per_thread, seed,
            log_level="view", online=True,
        )
        result.prog_logging_online_vyrd += online.run_cpu
    return result
