"""Test-harness workloads (paper section 7.1).

"Each test program first generates a random pool of keys to be shared by all
threads as arguments for method calls.  Then the program creates a number of
threads each of which, using arguments randomly chosen from the pool, issues
a given number of random method calls to the same data structure instance
concurrently.  The pool is reduced gradually over time to focus more
concurrent method calls on a smaller region of the data structure.  In
implementations with compression mechanisms, the compression thread is
either triggered automatically by mutator methods, or, otherwise, it is run
continuously."

This module packages that methodology as one :class:`Program` per benchmark
row of Table 1.  Each program knows how to build a fresh instance (correct
or with its seeded bug), its spec/view/invariants, its worker-thread bodies
and its internal daemon threads.

One deliberate deviation, documented in DESIGN.md and
:mod:`repro.multiset.spec`: the vector-multiset workload inserts each key at
most once (threads own disjoint key ranges), because the scan-based lookup is
genuinely non-linearizable under re-insertion of duplicated keys -- strict
observer checking would otherwise flag the *correct* implementation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..bqueue import BoundedQueue, QueueSpec, queue_view
from ..boxwood import (
    BLinkTree,
    BLinkTreeSpec,
    BoxwoodCache,
    ChunkManager,
    StoreSpec,
    blinktree_view,
    cache_invariants,
    cache_view,
)
from ..javalib import (
    JavaVector,
    StringBufferSpec,
    StringBufferSystem,
    VectorSpec,
    stringbuffer_view,
    vector_view,
)
from ..multiset import (
    MultisetSpec,
    TreeMultiset,
    VectorMultiset,
    multiset_view,
    tree_multiset_view,
)
from ..scanfs import BlockCache, BlockDevice, FsSpec, ScanFS, scanfs_view


class ShrinkingPool:
    """The paper's gradually shrinking key pool.

    Starts over the full key range; as draws accumulate, the effective range
    narrows toward its low end, concentrating contention."""

    def __init__(self, size: int, rng: random.Random, min_size: int = 4):
        self.size = size
        self.min_size = min(min_size, size)
        self.rng = rng
        self.draws = 0
        self.horizon = max(1, size * 4)

    def draw(self) -> int:
        progress = min(1.0, self.draws / self.horizon)
        effective = max(self.min_size, int(self.size * (1.0 - 0.75 * progress)))
        self.draws += 1
        return self.rng.randrange(effective)


@dataclass
class BuiltProgram:
    """Everything needed to run + verify one program instance."""

    impl: object
    spec_factory: Callable
    view_factory: Callable
    invariants: tuple = ()
    replay_registry: Optional[dict] = None
    # worker body factories: each is fn(vds, rng, thread_index, calls) -> thread body
    make_worker: Callable = None
    # daemon generator-function list (bound to impl), spawned with daemon=True
    daemons: tuple = ()


@dataclass(frozen=True)
class Program:
    """A named benchmark program (one Table 1 row)."""

    name: str
    bug: str
    build: Callable[[bool, int], BuiltProgram]  # (buggy, num_threads) -> built
    # location prefixes that are atomic by construction (see Vyrd(atomic_locs=...));
    # the B-link tree's lock-free descents read node cells that real Boxwood
    # accesses through the internally-locked Cache, so they synchronize, not race
    atomic_locs: tuple = ()


# ---------------------------------------------------------------------------
# Program definitions
# ---------------------------------------------------------------------------


def _build_multiset_vector(buggy: bool, num_threads: int) -> BuiltProgram:
    size = max(16, num_threads * 10)
    impl = VectorMultiset(size=size, buggy_findslot=buggy)

    def make_worker(vds, rng: random.Random, index: int, calls: int):
        base = index * 10_000
        lookup_pool = ShrinkingPool(num_threads * 40, rng)

        def body(ctx):
            fresh = 0
            for _ in range(calls):
                op = rng.choice(
                    ("insert", "insert_pair", "insert_pair", "delete", "lookup", "lookup")
                )
                if op == "insert":
                    yield from vds.insert(ctx, base + fresh)
                    fresh += 1
                elif op == "insert_pair":
                    yield from vds.insert_pair(ctx, base + fresh, base + fresh + 1)
                    fresh += 2
                elif op == "delete":
                    yield from vds.delete(ctx, base + rng.randrange(max(1, fresh + 2)))
                else:
                    target = rng.randrange(num_threads) * 10_000 + lookup_pool.draw()
                    yield from vds.lookup(ctx, target)

        return body

    return BuiltProgram(
        impl=impl,
        spec_factory=MultisetSpec,
        view_factory=multiset_view,
        make_worker=make_worker,
        daemons=(impl.compression_thread,),
    )


def _build_multiset_tree(buggy: bool, num_threads: int) -> BuiltProgram:
    impl = TreeMultiset(buggy_unlock_parent=buggy)

    def make_worker(vds, rng: random.Random, index: int, calls: int):
        pool = ShrinkingPool(num_threads * 12, rng)

        def body(ctx):
            for _ in range(calls):
                op = rng.choice(("insert", "insert", "delete", "lookup", "lookup"))
                key = pool.draw()
                if op == "insert":
                    yield from vds.insert(ctx, key)
                elif op == "delete":
                    yield from vds.delete(ctx, key)
                else:
                    yield from vds.lookup(ctx, key)

        return body

    return BuiltProgram(
        impl=impl,
        spec_factory=lambda: MultisetSpec(strict_delete=True),
        view_factory=tree_multiset_view,
        make_worker=make_worker,
        daemons=(impl.compression_thread,),
    )


def _build_java_vector(buggy: bool, num_threads: int) -> BuiltProgram:
    impl = JavaVector(capacity=64, buggy_last_index_of=buggy)

    def make_worker(vds, rng: random.Random, index: int, calls: int):
        def body(ctx):
            for _ in range(calls):
                op = rng.choice(
                    ("add", "add", "add", "remove_all", "last_index_of",
                     "last_index_of", "element_at", "size")
                )
                if op == "add":
                    yield from vds.add_element(ctx, rng.randrange(8))
                elif op == "remove_all":
                    yield from vds.remove_all_elements(ctx)
                elif op == "last_index_of":
                    yield from vds.last_index_of(ctx, rng.randrange(8))
                elif op == "element_at":
                    yield from vds.element_at(ctx, rng.randrange(10))
                else:
                    yield from vds.size(ctx)

        return body

    return BuiltProgram(
        impl=impl,
        spec_factory=lambda: VectorSpec(capacity=64),
        view_factory=vector_view,
        make_worker=make_worker,
    )


def _build_stringbuffer(buggy: bool, num_threads: int) -> BuiltProgram:
    impl = StringBufferSystem(capacity=64, buggy_append=buggy)

    def make_worker(vds, rng: random.Random, index: int, calls: int):
        def body(ctx):
            for _ in range(calls):
                if index % 2 == 0:
                    op = rng.choice(("append_buffer", "append_buffer", "to_string"))
                else:
                    op = rng.choice(("append_str", "delete", "delete", "length_of"))
                if op == "append_buffer":
                    yield from vds.append_buffer(ctx, "dst", "src")
                elif op == "append_str":
                    text = "abcdefgh"[: 1 + rng.randrange(4)]
                    yield from vds.append_str(ctx, "src", text)
                elif op == "delete":
                    yield from vds.delete(ctx, "src", 0, rng.randrange(1, 4))
                elif op == "to_string":
                    yield from vds.to_string(ctx, "dst")
                else:
                    yield from vds.length_of(ctx, "src")

        return body

    return BuiltProgram(
        impl=impl,
        spec_factory=lambda: StringBufferSpec(capacity=64),
        view_factory=stringbuffer_view,
        make_worker=make_worker,
    )


def _build_blinktree(buggy: bool, num_threads: int) -> BuiltProgram:
    impl = BLinkTree(order=4, buggy_duplicates=buggy)

    def make_worker(vds, rng: random.Random, index: int, calls: int):
        pool = ShrinkingPool(num_threads * 10, rng)

        def body(ctx):
            for i in range(calls):
                op = rng.choice(("insert", "insert", "insert", "delete", "lookup", "lookup"))
                key = pool.draw()
                if op == "insert":
                    yield from vds.insert(ctx, key, (index, i))
                elif op == "delete":
                    yield from vds.delete(ctx, key)
                else:
                    yield from vds.lookup(ctx, key)

        return body

    return BuiltProgram(
        impl=impl,
        spec_factory=BLinkTreeSpec,
        view_factory=blinktree_view,
        make_worker=make_worker,
        daemons=(impl.compression_thread,),
    )


class _CacheProgram:
    """Cache + ChunkManager with dedicated flusher workers."""

    BLOCK = 8

    def __init__(self, buggy: bool, num_threads: int):
        self.chunks = ChunkManager()
        self.cache = BoxwoodCache(
            self.chunks, block_size=self.BLOCK, buggy_dirty_write=buggy
        )
        self.handles = [self.chunks.allocate() for _ in range(max(2, num_threads))]


def _build_cache(buggy: bool, num_threads: int) -> BuiltProgram:
    program = _CacheProgram(buggy, num_threads)

    def make_worker(vds, rng: random.Random, index: int, calls: int):
        handles = program.handles

        def body(ctx):
            for _ in range(calls):
                if index % 4 == 3:
                    op = rng.choice(("flush", "flush", "evict", "read"))
                else:
                    op = rng.choice(("write", "write", "write", "read", "flush"))
                handle = rng.choice(handles)
                if op == "write":
                    buffer = tuple(rng.randrange(256) for _ in range(program.BLOCK))
                    yield from vds.write(ctx, handle, buffer)
                elif op == "read":
                    yield from vds.read(ctx, handle)
                elif op == "evict":
                    yield from vds.evict(ctx, handle)
                else:
                    yield from vds.flush(ctx)

        return body

    return BuiltProgram(
        impl=program.cache,
        spec_factory=StoreSpec,
        view_factory=lambda: cache_view(_CacheProgram.BLOCK),
        invariants=tuple(cache_invariants(_CacheProgram.BLOCK)),
        make_worker=make_worker,
    )


class _ScanFsProgram:
    def __init__(self, buggy: bool):
        self.device = BlockDevice(num_blocks=12, block_size=8)
        self.cache = BlockCache(self.device, buggy_dirty_update=buggy)
        self.fs = ScanFS(self.cache)


def _build_scanfs(buggy: bool, num_threads: int) -> BuiltProgram:
    program = _ScanFsProgram(buggy)
    names = [f"f{i}" for i in range(6)]

    def make_worker(vds, rng: random.Random, index: int, calls: int):
        def body(ctx):
            for _ in range(calls):
                op = rng.choice(("create", "write", "write", "write", "read", "delete"))
                name = rng.choice(names)
                if op == "create":
                    yield from vds.create(ctx, name)
                elif op == "write":
                    content = tuple(rng.randrange(256) for _ in range(rng.randrange(7)))
                    yield from vds.write_file(ctx, name, content)
                elif op == "read":
                    yield from vds.read_file(ctx, name)
                else:
                    yield from vds.delete(ctx, name)

        return body

    return BuiltProgram(
        impl=program.fs,
        spec_factory=lambda: FsSpec(num_blocks=12, max_content=7),
        view_factory=lambda: scanfs_view(12, 8),
        make_worker=make_worker,
        daemons=(program.cache.flush_thread,),
    )


def _build_bounded_queue(buggy: bool, num_threads: int) -> BuiltProgram:
    capacity = max(4, num_threads)
    impl = BoundedQueue(capacity=capacity, buggy_nonatomic_dequeue=buggy)

    def make_worker(vds, rng: random.Random, index: int, calls: int):
        def body(ctx):
            for i in range(calls):
                op = rng.choice(
                    ("try_enqueue", "try_enqueue", "try_dequeue", "try_dequeue",
                     "size_of")
                )
                if op == "try_enqueue":
                    yield from vds.try_enqueue(ctx, (index, i))
                elif op == "try_dequeue":
                    yield from vds.try_dequeue(ctx)
                else:
                    yield from vds.size_of(ctx)

        return body

    return BuiltProgram(
        impl=impl,
        spec_factory=lambda: QueueSpec(capacity=capacity),
        view_factory=lambda: queue_view(capacity),
        make_worker=make_worker,
    )


PROGRAMS: Dict[str, Program] = {
    "multiset-vector": Program(
        "multiset-vector", "Moving acquire in FindSlot", _build_multiset_vector
    ),
    "multiset-tree": Program(
        "multiset-tree", "Unlocking parent before insertion", _build_multiset_tree
    ),
    "java-vector": Program(
        "java-vector", "Taking length non-atomically in lastIndexOf()", _build_java_vector
    ),
    "stringbuffer": Program(
        "stringbuffer", "Copying from an unprotected StringBuffer", _build_stringbuffer
    ),
    "blinktree": Program(
        "blinktree", "Allowing duplicated data nodes", _build_blinktree,
        atomic_locs=("blt.",),
    ),
    "cache": Program(
        "cache", "Writing an unprotected dirty cache entry", _build_cache
    ),
    "scanfs": Program(
        "scanfs", "Unprotected update of a dirty cached block", _build_scanfs
    ),
    "bounded-queue": Program(
        "bounded-queue", "Releasing the monitor mid-dequeue", _build_bounded_queue
    ),
}
