"""Measurement utilities and table formatting for the benchmark harness.

Two clocks, named explicitly because they answer different questions:

* **cpu** (``time.process_time``) -- CPU seconds consumed by *this* process.
  The paper's tables report CPU time, and it is the right clock for
  single-process checker-cost comparisons; it does not advance during
  sleeps and never sees work done by worker processes.
* **wall** (``time.perf_counter``) -- elapsed real time.  The right clock
  for anything involving the multi-process explorers, fault-injection
  latency, or end-to-end campaign cost.

Pick the variant that matches what you are measuring; there is
intentionally no clock-agnostic ``Timer``/``time_call`` any more (the old
ones silently used the cpu clock, under-reporting every multi-process or
sleeping workload).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterable, List, Optional, Sequence


class _AccumulatingTimer:
    """Accumulating timer; subclasses pick the clock."""

    _clock = staticmethod(time.process_time)

    def __init__(self):
        self.elapsed = 0.0

    @contextmanager
    def measure(self):
        start = self._clock()
        try:
            yield self
        finally:
            self.elapsed += self._clock() - start


class CpuTimer(_AccumulatingTimer):
    """Accumulating CPU-time timer (this process only; sleeps excluded)."""

    _clock = staticmethod(time.process_time)


class WallTimer(_AccumulatingTimer):
    """Accumulating wall-clock timer (covers worker processes and sleeps)."""

    _clock = staticmethod(time.perf_counter)


def time_call_cpu(fn, *args, **kwargs):
    """Run ``fn`` and return ``(result, cpu_seconds)`` for this process."""
    start = time.process_time()
    result = fn(*args, **kwargs)
    return result, time.process_time() - start


def time_call_wall(fn, *args, **kwargs):
    """Run ``fn`` and return ``(result, wall_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def mean(values: Iterable[Optional[float]]) -> Optional[float]:
    """Arithmetic mean, skipping ``None`` entries (absent measurements).

    Returns ``None`` when no numeric values remain.
    """
    numeric = [v for v in values if v is not None]
    if not numeric:
        return None
    return sum(numeric) / len(numeric)


def fmt(value, width: int = 10, digits: int = 3) -> str:
    """Format one table cell."""
    if value is None:
        return "-".rjust(width)
    if isinstance(value, float):
        return f"{value:.{digits}f}".rjust(width)
    return str(value).rjust(width)


def _is_numeric_cell(cell) -> bool:
    return cell is None or (
        isinstance(cell, (int, float)) and not isinstance(cell, bool)
    )


def render_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Plain-text table in the style of the paper's Tables 1-3.

    Numeric columns (every original cell a number or ``None``, with at
    least one number) are right-aligned; string columns stay left-aligned.
    Pre-formatted string cells are used verbatim.
    """
    rows = [list(r) for r in rows]
    widths = [len(h) for h in headers]
    # A column is right-aligned iff nothing but numbers (or missing values)
    # ever lands in it -- a single string cell makes it textual, and a
    # column of only ``None`` placeholders has nothing to align as numbers.
    saw_number = [False] * len(headers)
    all_numeric = [True] * len(headers)
    for row in rows:
        for i, cell in enumerate(row):
            if not _is_numeric_cell(cell):
                all_numeric[i] = False
            elif cell is not None:
                saw_number[i] = True
    numeric_col = [a and s for a, s in zip(all_numeric, saw_number)]
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = [
            cell if isinstance(cell, str) else fmt(cell, 0)
            for cell in row
        ]
        rendered_rows.append(rendered)
        for i, cell in enumerate(rendered):
            widths[i] = max(widths[i], len(cell))
    lines = [f"== {title} =="]
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for rendered in rendered_rows:
        lines.append(
            " | ".join(
                cell.rjust(widths[i]) if numeric_col[i] else cell.ljust(widths[i])
                for i, cell in enumerate(rendered)
            )
        )
    return "\n".join(lines)
