"""Measurement utilities and table formatting for the benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterable, List, Optional, Sequence


class Timer:
    """Accumulating process-time timer (the paper reports CPU seconds)."""

    def __init__(self):
        self.elapsed = 0.0

    @contextmanager
    def measure(self):
        start = time.process_time()
        try:
            yield self
        finally:
            self.elapsed += time.process_time() - start


def time_call(fn, *args, **kwargs):
    """Run ``fn`` and return ``(result, cpu_seconds)``."""
    start = time.process_time()
    result = fn(*args, **kwargs)
    return result, time.process_time() - start


def mean(values: Iterable[float]) -> Optional[float]:
    values = [v for v in values if v is not None]
    if not values:
        return None
    return sum(values) / len(values)


def fmt(value, width: int = 10, digits: int = 3) -> str:
    """Format one table cell."""
    if value is None:
        return "-".rjust(width)
    if isinstance(value, float):
        return f"{value:.{digits}f}".rjust(width)
    return str(value).rjust(width)


def render_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Plain-text table in the style of the paper's Tables 1-3."""
    rows = [list(r) for r in rows]
    widths = [len(h) for h in headers]
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = [
            cell if isinstance(cell, str) else fmt(cell, 0)
            for cell in row
        ]
        rendered_rows.append(rendered)
        for i, cell in enumerate(rendered):
            widths[i] = max(widths[i], len(cell))
    lines = [f"== {title} =="]
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for rendered in rendered_rows:
        lines.append(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(rendered))
        )
    return "\n".join(lines)
