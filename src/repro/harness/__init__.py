"""Randomized test harness and experiment drivers (paper section 7).

* :data:`PROGRAMS` -- one :class:`Program` per evaluated system (the rows of
  Table 1, plus the Scan file system).
* :func:`run_program` -- run one seeded workload and obtain its VYRD log.
* :class:`ProgramSpec` / :func:`explore_program` -- picklable workload
  descriptions and the exploration-campaign driver (serial or
  multi-process via :mod:`repro.concurrency.parallel`).
* :func:`detection_experiment` (Table 1),
  :func:`logging_overhead_experiment` (Table 2),
  :func:`breakdown_experiment` (Table 3).
"""

from .metrics import (
    CpuTimer,
    WallTimer,
    fmt,
    mean,
    render_table,
    time_call_cpu,
    time_call_wall,
)
from .runner import (
    BreakdownResult,
    DetectionResult,
    LoggingOverheadResult,
    ProgramSpec,
    RunResult,
    breakdown_experiment,
    detection_experiment,
    explore_program,
    log_hb_fingerprint,
    logging_overhead_experiment,
    run_program,
)
from .workload import PROGRAMS, BuiltProgram, Program, ShrinkingPool

__all__ = [
    "BreakdownResult",
    "BuiltProgram",
    "DetectionResult",
    "LoggingOverheadResult",
    "PROGRAMS",
    "Program",
    "ProgramSpec",
    "CpuTimer",
    "RunResult",
    "ShrinkingPool",
    "WallTimer",
    "breakdown_experiment",
    "detection_experiment",
    "explore_program",
    "log_hb_fingerprint",
    "fmt",
    "logging_overhead_experiment",
    "mean",
    "render_table",
    "run_program",
    "time_call_cpu",
    "time_call_wall",
]
