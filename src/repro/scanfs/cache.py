"""Scan's block cache, with the Boxwood-style unprotected-update bug.

A write-back cache of device blocks.  Per block: a state cell (``"none"`` /
``"clean"`` / ``"dirty"``) and byte-granular data cells, all nominally
guarded by one cache lock.  The seeded bug (paper section 7.3: Scan's bugs
were "very similar to those found in Boxwood's Cache"): updating an
*already-dirty* block copies the new bytes without taking the cache lock, so
a concurrent flush can write a torn buffer to the device and mark the block
clean.

The flusher is meant to run as an internal daemon
(:meth:`BlockCache.flush_thread`): its write-back commits are internal
(op-less) commits, verified by view refinement to leave the file-system
contents unchanged.
"""

from __future__ import annotations

from typing import List, Tuple

from ..concurrency import KernelStopped, Lock, SharedCell, ThreadCtx
from .blockdev import BlockDevice

NONE = "none"
CLEAN = "clean"
DIRTY = "dirty"


class BlockCache:
    """Write-back block cache over a :class:`BlockDevice`."""

    def __init__(self, device: BlockDevice, buggy_dirty_update: bool = False):
        self.device = device
        self.block_size = device.block_size
        self.buggy_dirty_update = buggy_dirty_update
        self.lock = Lock("scache")
        self.state = [
            SharedCell(f"scache[{i}].state", NONE) for i in range(device.num_blocks)
        ]
        self.data = [
            [SharedCell(f"scache[{i}].data[{j}]", 0) for j in range(self.block_size)]
            for i in range(device.num_blocks)
        ]

    def _copy_in(self, block_no: int, data: Tuple[int, ...], commit_last: bool = False):
        last = self.block_size - 1
        for j, byte in enumerate(data):
            yield self.data[block_no][j].write(byte, commit=commit_last and j == last)

    def _read_bytes(self, block_no: int):
        out: List[int] = []
        for cell in self.data[block_no]:
            byte = yield cell.read()
            out.append(byte)
        return tuple(out)

    def write_block(self, ctx: ThreadCtx, block_no: int, data: Tuple[int, ...],
                    commit: bool = False):
        """Buffer a block write (dirty the cache entry).

        ``commit`` rides the caller's commit action on the write that makes
        the new contents visible.
        """
        data = tuple(data)
        yield self.lock.acquire()
        state = yield self.state[block_no].read()
        if state == DIRTY and self.buggy_dirty_update:
            # BUG: update the dirty buffer outside the cache lock; a
            # concurrent flush can snapshot it mid-copy.
            yield self.lock.release()
            yield from self._copy_in(block_no, data, commit_last=commit)
            return
        yield ctx.begin_commit_block()
        yield from self._copy_in(block_no, data)
        yield self.state[block_no].write(DIRTY, commit=commit)
        yield ctx.end_commit_block()
        yield self.lock.release()

    def read_block(self, ctx: ThreadCtx, block_no: int):
        """Cached bytes; miss fills from the device (read-through)."""
        yield self.lock.acquire()
        state = yield self.state[block_no].read()
        if state in (CLEAN, DIRTY):
            data = yield from self._read_bytes(block_no)
            yield self.lock.release()
            return data
        yield self.lock.release()
        data = yield from self.device.read_block(ctx, block_no)
        if data is not None:
            yield self.lock.acquire()
            state = yield self.state[block_no].read()
            if state == NONE:
                yield from self._copy_in(block_no, data)
                yield self.state[block_no].write(CLEAN)
            data = yield from self._read_bytes(block_no)
            yield self.lock.release()
        return data

    def invalidate(self, ctx: ThreadCtx, block_no: int):
        """Drop a block from the cache without write-back (file deletion)."""
        yield self.lock.acquire()
        yield self.state[block_no].write(NONE)
        yield self.lock.release()

    def flush_pass(self, ctx: ThreadCtx):
        """Write every dirty block back and mark it clean.

        One internal commit per written-back block (the clean-marking write),
        verified by view refinement to leave the FS contents unchanged."""
        flushed = False
        for block_no in range(self.device.num_blocks):
            yield self.lock.acquire()
            state = yield self.state[block_no].read()
            if state == DIRTY:
                data = yield from self._read_bytes(block_no)
                yield ctx.begin_commit_block()
                yield from self.device.write_block(ctx, block_no, data)
                yield self.state[block_no].write(CLEAN, commit=True)
                yield ctx.end_commit_block()
                flushed = True
            yield self.lock.release()
        return flushed

    def evict_clean(self, ctx: ThreadCtx):
        """Drop every clean block (cache shrink); internal commits."""
        for block_no in range(self.device.num_blocks):
            yield self.lock.acquire()
            state = yield self.state[block_no].read()
            if state == CLEAN:
                yield self.state[block_no].write(NONE, commit=True)
            yield self.lock.release()

    def flush_thread(self, ctx: ThreadCtx):
        """Daemon body: continuously flush and occasionally evict."""
        try:
            passes = 0
            while True:
                yield ctx.checkpoint()
                yield from self.flush_pass(ctx)
                passes += 1
                if passes % 4 == 0:
                    yield from self.evict_clean(ctx)
        except KernelStopped:
            return

    def peek_state(self, block_no: int) -> str:
        return self.state[block_no].peek()
