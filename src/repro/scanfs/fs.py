"""The Scan-like file system layered on the block cache.

A deliberately small write-optimized-FS stand-in (DESIGN.md records the
substitution): a flat directory maps names to inode numbers; inode ``i``
owns block ``i``; a file's content (up to ``block_size - 1`` bytes) is
stored length-prefixed in its block, written through the
:class:`~repro.scanfs.cache.BlockCache`; a flush daemon writes dirty blocks
back to the device.  The verified property is the paper's: the file system,
observed through its public operations, refines a map from names to
contents, with the cache invisible -- so the cache bug (torn write-back)
surfaces as a view-refinement violation at a flush/evict commit long before
any ``read_file`` happens to return corrupted data.

Directory and allocation updates are serialized by one directory lock; the
interesting concurrency is between file operations and the flush/evict
daemon, which is where Scan's real bugs lived (section 7.3).

Shared state: ``fs.dir[<name>]`` (inode or ``None``), ``fs.used[i]``
allocation bits, plus the cache/device cells.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..concurrency import Lock, SharedCell, ThreadCtx
from ..core import FunctionView, operation
from .cache import CLEAN, DIRTY, BlockCache


class ScanFS:
    """Flat file system over a block cache."""

    def __init__(self, cache: BlockCache):
        self.cache = cache
        self.device = cache.device
        self.block_size = cache.block_size
        self.max_content = self.block_size - 1
        self.dir_lock = Lock("fs.dir-lock")
        self._dir_cells: Dict[str, SharedCell] = {}
        self.used = [
            SharedCell(f"fs.used[{i}]", False) for i in range(self.device.num_blocks)
        ]

    def _dir_cell(self, name: str) -> SharedCell:
        if name not in self._dir_cells:
            self._dir_cells[name] = SharedCell(f"fs.dir[{name}]", None)
        return self._dir_cells[name]

    def _encode(self, content: Tuple[int, ...]) -> Tuple[int, ...]:
        padding = (0,) * (self.max_content - len(content))
        return (len(content),) + tuple(content) + padding

    @staticmethod
    def decode(block: Optional[Tuple[int, ...]]) -> Optional[Tuple[int, ...]]:
        """Length-prefixed block -> content tuple (``None`` passes through)."""
        if block is None:
            return None
        length = block[0]
        return tuple(block[1 : 1 + length])

    # -- public operations -----------------------------------------------------

    @operation
    def create(self, ctx: ThreadCtx, name: str):
        """Create an empty file; False if it exists or the disk is full."""
        yield self.dir_lock.acquire()
        ino = yield self._dir_cell(name).read()
        if ino is not None:
            yield ctx.commit()
            yield self.dir_lock.release()
            return False
        block_no = None
        for i in range(self.device.num_blocks):
            used = yield self.used[i].read()
            if not used:
                block_no = i
                break
        if block_no is None:
            yield ctx.commit()
            yield self.dir_lock.release()
            return False
        yield self.used[block_no].write(True)
        yield from self.cache.write_block(ctx, block_no, self._encode(()))  # vyrd: ignore[VY008] -- effects live in the shared BlockCache; the matrix already treats fs ops as mutually dependent
        yield self._dir_cell(name).write(block_no, commit=True)
        yield self.dir_lock.release()
        return True

    @operation
    def write_file(self, ctx: ThreadCtx, name: str, content: Tuple[int, ...]):
        """Replace a file's content; False if absent or content too long."""
        content = tuple(content)
        yield self.dir_lock.acquire()
        ino = yield self._dir_cell(name).read()
        if ino is None or len(content) > self.max_content:
            yield ctx.commit()
            yield self.dir_lock.release()
            return False
        yield from self.cache.write_block(ctx, ino, self._encode(content), commit=True)  # vyrd: ignore[VY008] -- effects live in the shared BlockCache; the matrix already treats fs ops as mutually dependent
        yield self.dir_lock.release()
        return True

    @operation
    def read_file(self, ctx: ThreadCtx, name: str):
        """Observer: the file's content tuple, or ``None`` if absent."""
        yield self.dir_lock.acquire()
        ino = yield self._dir_cell(name).read()
        if ino is None:
            yield self.dir_lock.release()
            return None
        block = yield from self.cache.read_block(ctx, ino)  # vyrd: ignore[VY008] -- effects live in the shared BlockCache; the matrix already treats fs ops as mutually dependent
        yield self.dir_lock.release()
        return self.decode(block)

    @operation
    def delete(self, ctx: ThreadCtx, name: str):
        """Remove a file; False if absent."""
        yield self.dir_lock.acquire()
        ino = yield self._dir_cell(name).read()
        if ino is None:
            yield ctx.commit()
            yield self.dir_lock.release()
            return False
        # Unpublish first (the commit action), then reclaim the block: the
        # block must already be invisible when its cache state changes.
        yield self._dir_cell(name).write(None, commit=True)
        yield from self.cache.invalidate(ctx, ino)  # vyrd: ignore[VY008] -- effects live in the shared BlockCache; the matrix already treats fs ops as mutually dependent
        yield self.used[ino].write(False)
        yield self.dir_lock.release()
        return True

    # -- direct helpers ------------------------------------------------------------

    def files(self) -> Dict[str, Tuple[int, ...]]:
        """name -> content via direct reads (post-run assertions only)."""
        result: Dict[str, Tuple[int, ...]] = {}
        for name, cell in self._dir_cells.items():
            ino = cell.peek()
            if ino is None:
                continue
            state = self.cache.peek_state(ino)
            if state in (CLEAN, DIRTY):
                block = tuple(c.peek() for c in self.cache.data[ino])
            else:
                block = self.device.peek(ino)
            result[name] = self.decode(block)
        return result

    VYRD_METHODS = {
        "create": "mutator",
        "write_file": "mutator",
        "read_file": "observer",
        "delete": "mutator",
    }

    # _dir_cell memo-creates the name-keyed directory cell with a name
    # derived only from its argument, so the hidden _dir_cells write
    # commutes with steps of other threads.
    VYRD_CONFLUENT_HELPERS = ("_dir_cell",)


def scanfs_view(num_blocks: int = 16, block_size: int = 8) -> FunctionView:
    """``viewI``: name -> content through cache-over-device, per the replay
    state."""

    def compute(state) -> dict:
        result = {}
        for loc, ino in state.items_with_prefix("fs.dir["):
            if ino is None:
                continue
            name = loc[len("fs.dir[") : -1]
            cache_state = state.get(f"scache[{ino}].state", "none")
            if cache_state in (CLEAN, DIRTY):
                block = tuple(
                    state.get(f"scache[{ino}].data[{j}]", 0) for j in range(block_size)
                )
            else:
                block = state.get(f"disk[{ino}]")
            result[name] = ScanFS.decode(block)
        return result

    return FunctionView(compute)
