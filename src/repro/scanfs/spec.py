"""Specification of the Scan-like file system: a map from names to contents."""

from __future__ import annotations

from typing import Dict, Tuple

from ..core import VIEW_ABSENT, SpecReject, Specification, mutator, observer


class FsSpec(Specification):
    """name -> content-tuple map; capacity-aware (one block per file)."""

    tracks_view_delta = True

    def __init__(self, num_blocks: int = 16, max_content: int = 7):
        self.num_blocks = num_blocks
        self.max_content = max_content
        self.files: Dict[str, Tuple[int, ...]] = {}

    @mutator
    def create(self, name, *, result):
        exists = name in self.files
        full = len(self.files) >= self.num_blocks
        if result is True:
            if exists:
                raise SpecReject(f"create({name!r}) succeeded but the file exists")
            if full:
                raise SpecReject(f"create({name!r}) succeeded on a full disk")
            self.files[name] = ()
            self._touch(name)
        elif result is False:
            if not exists and not full:
                raise SpecReject(f"create({name!r}) failed with room available")
        else:
            raise SpecReject(f"create must return a bool, got {result!r}")

    @mutator
    def write_file(self, name, content, *, result):
        content = tuple(content)
        possible = name in self.files and len(content) <= self.max_content
        if result is True:
            if not possible:
                raise SpecReject(
                    f"write_file({name!r}) succeeded but the spec disallows it"
                )
            self.files[name] = content
            self._touch(name)
        elif result is False:
            if possible:
                raise SpecReject(f"write_file({name!r}) failed but was possible")
        else:
            raise SpecReject(f"write_file must return a bool, got {result!r}")

    @mutator
    def delete(self, name, *, result):
        if result is True:
            if name not in self.files:
                raise SpecReject(f"delete({name!r}) succeeded on an absent file")
            del self.files[name]
            self._touch(name)
        elif result is False:
            if name in self.files:
                raise SpecReject(f"delete({name!r}) failed but the file exists")
        else:
            raise SpecReject(f"delete must return a bool, got {result!r}")

    def candidate_results(self, method, args):
        """Plausible returns for incomplete operations in recovered logs."""
        if method in ("create", "write_file", "delete"):
            return (True, False)
        return None

    @observer
    def read_file(self, name):
        return self.files.get(name)

    def view(self) -> dict:
        return dict(self.files)

    def view_at(self, name):
        return self.files[name] if name in self.files else VIEW_ABSENT

    def describe(self) -> str:
        return f"files = {self.files!r}"
