"""A Scan-like write-back file system (paper section 7.3).

* :class:`BlockDevice` -- atomic-sector block store.
* :class:`BlockCache` -- write-back block cache; ``buggy_dirty_update=True``
  enables the Scan/Boxwood-class bug (unprotected update of a dirty block,
  torn by a concurrent flush).
* :class:`ScanFS` -- flat file system over the cache; :func:`scanfs_view`
  and :class:`FsSpec` define the verified abstraction (name -> content).
"""

from .blockdev import BlockDevice
from .cache import BlockCache
from .fs import ScanFS, scanfs_view
from .spec import FsSpec

__all__ = ["BlockCache", "BlockDevice", "FsSpec", "ScanFS", "scanfs_view"]
