"""Block device under the Scan file system.

The Scan file system (paper references [9]/[13]) is a write-optimized file
system for Windows NT.  We model its storage as a simple block device whose
sector writes are atomic -- one shared cell per block, so each device write
is a single logged action.  The interesting (bug-prone) concurrency lives in
the block cache above it, as in the paper ("interestingly, these bugs were
also in the cache module of Scan", section 7.3).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..concurrency import Lock, SharedCell, ThreadCtx


class BlockDevice:
    """Fixed array of atomic blocks (``disk[i]`` cells)."""

    def __init__(self, num_blocks: int = 16, block_size: int = 8):
        self.num_blocks = num_blocks
        self.block_size = block_size
        self._lock = Lock("disk")
        self.blocks = [SharedCell(f"disk[{i}]", None) for i in range(num_blocks)]

    def write_block(self, ctx: ThreadCtx, block_no: int, data: Tuple[int, ...],
                    commit: bool = False):
        """Atomically replace one block (sector write)."""
        if len(data) != self.block_size:
            raise ValueError("data must be exactly one block")
        yield self._lock.acquire()
        yield self.blocks[block_no].write(tuple(data), commit=commit)
        yield self._lock.release()

    def read_block(self, ctx: ThreadCtx, block_no: int):
        yield self._lock.acquire()
        data = yield self.blocks[block_no].read()
        yield self._lock.release()
        return data

    def peek(self, block_no: int) -> Optional[Tuple[int, ...]]:
        return self.blocks[block_no].peek()
