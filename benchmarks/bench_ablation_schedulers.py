"""Ablation -- scheduling policy vs bug exposure.

The paper's harness relies on randomized tests triggering the bug at all;
the deterministic substrate lets us compare scheduling policies directly.
For each buggy program we run the same workload under the uniform random
scheduler and under PCT (priority-based probabilistic concurrency testing)
across a pool of seeds, and report the fraction of runs in which view
refinement detects the bug and the mean methods-to-detection.

This is an extension relative to the paper (DESIGN.md experiment index).
"""

import pytest

from repro.concurrency import PCTScheduler
from repro.harness import mean, render_table, run_program

from _common import emit, fmt_mean

SEEDS = range(12)
CONFIG = [
    ("multiset-vector", 8, 40),
    ("multiset-tree", 8, 40),
    ("stringbuffer", 8, 40),
]

_rows = []


def _detection_rate(name, threads, calls, scheduler_factory):
    hits = []
    for seed in SEEDS:
        run = run_program(
            name, buggy=True, num_threads=threads, calls_per_thread=calls,
            seed=seed, scheduler_factory=scheduler_factory,
        )
        outcome = run.vyrd.check_offline()
        hits.append(outcome.detection_method_count if not outcome.ok else None)
    detected = [h for h in hits if h is not None]
    return len(detected) / len(hits), mean(detected)


def _measure(name, threads, calls):
    random_rate, random_mean = _detection_rate(name, threads, calls, None)
    pct_rate, pct_mean = _detection_rate(
        name, threads, calls,
        lambda seed: PCTScheduler(seed=seed, depth=3, expected_steps=20_000),
    )
    row = (name, random_rate, random_mean, pct_rate, pct_mean)
    _rows.append(row)
    return row


@pytest.mark.parametrize("name,threads,calls", CONFIG, ids=[c[0] for c in CONFIG])
def test_scheduler_ablation(benchmark, name, threads, calls):
    row = benchmark.pedantic(_measure, args=(name, threads, calls),
                             rounds=1, iterations=1)
    _, random_rate, _, pct_rate, _ = row
    # at least one policy must expose the bug within the seed pool
    assert max(random_rate, pct_rate) > 0


def _render() -> str:
    rows = []
    for name, random_rate, random_mean, pct_rate, pct_mean in _rows:
        rows.append([
            name,
            f"{random_rate:.0%}", fmt_mean(random_mean),
            f"{pct_rate:.0%}", fmt_mean(pct_mean),
        ])
    return render_table(
        f"Ablation: scheduling policy vs bug exposure ({len(list(SEEDS))} seeds, "
        "view refinement)",
        ["program", "random: detected", "random: mean methods",
         "PCT: detected", "PCT: mean methods"],
        rows,
    )


@pytest.fixture(scope="module", autouse=True)
def _emit_table():
    yield
    if _rows:
        emit("ablation_schedulers", _render())


def main() -> None:
    for name, threads, calls in CONFIG:
        _measure(name, threads, calls)
    emit("ablation_schedulers", _render())


if __name__ == "__main__":
    main()
