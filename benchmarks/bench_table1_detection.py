"""Table 1 -- Time to detection of error.

For every buggy program and thread count, the paper reports the average
number of methods executed before the first error is detected under I/O
refinement and under view refinement, plus the ratio of view-mode to
I/O-mode checker CPU time on the same trace.

Shape claims reproduced here (see EXPERIMENTS.md for measured values):

* view refinement detects after far fewer methods than I/O refinement for
  every state-corrupting bug;
* for java.util.Vector's observer-only bug, the two are identical;
* the Cache row has by far the largest view/IO CPU ratio (fine-grained
  byte-level logging), mirroring the paper's 16.9 vs 1.03-3.46 elsewhere.
"""

import pytest

from repro.harness import detection_experiment, render_table

from _common import emit, fmt_mean

# (program, thread counts): a scaled-down version of Table 1's sweep
TABLE1_CONFIG = [
    ("multiset-vector", (4, 8, 16)),
    ("multiset-tree", (4, 8, 16)),
    ("java-vector", (4, 8, 16)),
    ("stringbuffer", (4, 8, 16)),
    ("blinktree", (2, 8, 16)),
    ("cache", (4, 8, 16)),
]
CALLS_PER_THREAD = 50
SEEDS = range(5)

_rows = []


def _run_row(name: str, threads: int):
    result = detection_experiment(
        name, num_threads=threads, calls_per_thread=CALLS_PER_THREAD, seeds=SEEDS
    )
    _rows.append(result)
    return result


@pytest.mark.parametrize(
    "name,threads",
    [(name, t) for name, counts in TABLE1_CONFIG for t in counts],
    ids=[f"{name}-t{t}" for name, counts in TABLE1_CONFIG for t in counts],
)
def test_table1_row(benchmark, name, threads):
    result = benchmark.pedantic(
        _run_row, args=(name, threads), rounds=1, iterations=1
    )
    # the bug must be found by at least one mode across the seeds
    assert result.view_detections or result.io_detections
    # view refinement is never slower to detect than I/O on corrupting bugs
    if result.io_mean is not None and result.view_mean is not None:
        if name != "java-vector":
            assert result.view_mean <= result.io_mean * 1.5 + 5


def _render() -> str:
    rows = []
    for result in _rows:
        rows.append([
            result.program,
            result.bug,
            result.num_threads,
            fmt_mean(result.io_mean),
            fmt_mean(result.view_mean),
            f"{result.cpu_ratio:.2f}" if result.cpu_ratio else "-",
        ])
    return render_table(
        "Table 1: time to detection of error "
        f"(avg over {len(list(SEEDS))} seeds, {CALLS_PER_THREAD} calls/thread)",
        ["program", "error", "#threads", "I/O ref (methods)",
         "view ref (methods)", "CPU view/IO"],
        rows,
    )


@pytest.fixture(scope="module", autouse=True)
def _emit_table():
    yield
    if _rows:
        emit("table1_detection", _render())


def main() -> None:
    for name, counts in TABLE1_CONFIG:
        for threads in counts:
            _run_row(name, threads)
    emit("table1_detection", _render())


if __name__ == "__main__":
    main()
