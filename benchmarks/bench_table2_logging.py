"""Table 2 -- Overhead of logging.

The paper compares, for each program, the run time of the unmodified
program against the additional cost of (a) I/O-refinement logging (calls,
returns, commits only) and (b) view-refinement logging (plus every shared
write, commit block and coarse entry).

Shape claims reproduced:

* logging costs are a fraction of (or comparable to) the program's own run
  time, never orders of magnitude above it;
* view-level logging costs strictly more than I/O-level logging, with the
  largest gaps in the programs dominated by fine-grained shared writes
  (multiset-vector, cache) -- the paper's observation verbatim.
"""

import pytest

from repro.harness import logging_overhead_experiment, render_table

from _common import emit, fmt_secs

TABLE2_CONFIG = [
    ("multiset-vector", 8, 60),
    ("java-vector", 8, 60),
    ("stringbuffer", 8, 60),
    ("blinktree", 8, 60),
    ("cache", 8, 60),
]
SEEDS = range(3)

_rows = []


def _run_row(name: str, threads: int, calls: int):
    result = logging_overhead_experiment(
        name, num_threads=threads, calls_per_thread=calls, seeds=SEEDS
    )
    _rows.append(result)
    return result


@pytest.mark.parametrize(
    "name,threads,calls", TABLE2_CONFIG, ids=[c[0] for c in TABLE2_CONFIG]
)
def test_table2_row(benchmark, name, threads, calls):
    result = benchmark.pedantic(
        _run_row, args=(name, threads, calls), rounds=1, iterations=1
    )
    assert result.program_alone > 0
    # The shape claim -- view logging costs more than I/O logging -- is
    # structural (strictly more records); assert it on record counts, and
    # on timings only up to scheduler noise (these rows are milliseconds).
    from repro.harness import run_program

    io_records = len(run_program(name, False, threads, calls, 0,
                                 log_level="io").log)
    view_records = len(run_program(name, False, threads, calls, 0,
                                   log_level="view").log)
    assert view_records > io_records
    # timing tolerance scales with the baseline: on multiset-vector the
    # continuously-running compression daemon makes the base seconds long,
    # so run-to-run noise dwarfs millisecond logging deltas
    noise = 0.02 + 0.08 * result.program_alone
    assert result.view_logging >= result.io_logging - noise


def _render() -> str:
    rows = []
    for result in _rows:
        rows.append([
            result.program,
            fmt_secs(result.program_alone),
            fmt_secs(result.io_logging),
            fmt_secs(result.view_logging),
        ])
    return render_table(
        "Table 2: overhead of logging (CPU s, summed over "
        f"{len(list(SEEDS))} seeds; identical schedules per level)",
        ["program", "program alone", "+ I/O-ref logging", "+ view-ref logging"],
        rows,
    )


@pytest.fixture(scope="module", autouse=True)
def _emit_table():
    yield
    if _rows:
        emit("table2_logging", _render())


def main() -> None:
    for name, threads, calls in TABLE2_CONFIG:
        _run_row(name, threads, calls)
    emit("table2_logging", _render())


if __name__ == "__main__":
    main()
