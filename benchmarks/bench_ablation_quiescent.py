"""Ablation -- commit-point vs quiescent-point state checking (section 8).

The paper contrasts its per-commit view checks with commit-atomicity
[Flanagan, SPIN'04], which compares states "only at quiescent points rather
than at each commit point", and argues quiescent points are too rare in
realistic runs: "checking only at these points might cause errors to be
overwritten or to be discovered too late".

This ablation quantifies that on the buggy Cache and StringBuffer: the same
view-level traces are checked with ``view_at="commit"`` and
``view_at="quiescent"``, reporting detection rate and mean
methods-to-detection for each.
"""

import pytest

from repro.harness import mean, render_table, run_program

from _common import emit, fmt_mean

SEEDS = range(10)
CONFIG = [
    ("cache", 8, 50),
    ("stringbuffer", 8, 50),
    ("multiset-tree", 8, 50),
]

_rows = []


def _measure(name, threads, calls):
    commit_hits, quiescent_hits = [], []
    runs = 0
    for seed in SEEDS:
        run = run_program(name, buggy=True, num_threads=threads,
                          calls_per_thread=calls, seed=seed, log_level="view")
        runs += 1
        commit = run.vyrd.check_offline_with_mode("view")
        quiescent = run.vyrd.check_offline_with_mode("view", view_at="quiescent")
        if not commit.ok:
            commit_hits.append(commit.detection_method_count)
        if not quiescent.ok:
            quiescent_hits.append(quiescent.detection_method_count)
    row = (name, runs, commit_hits, quiescent_hits)
    _rows.append(row)
    return row


@pytest.mark.parametrize("name,threads,calls", CONFIG, ids=[c[0] for c in CONFIG])
def test_commit_checking_dominates_quiescent(benchmark, name, threads, calls):
    _, runs, commit_hits, quiescent_hits = benchmark.pedantic(
        _measure, args=(name, threads, calls), rounds=1, iterations=1
    )
    # per-commit checking detects at least as often...
    assert len(commit_hits) >= len(quiescent_hits)
    assert commit_hits, "the bug should be detectable at commits"
    # ...and, when both detect, never later on average
    if quiescent_hits and commit_hits:
        assert mean(commit_hits) <= mean(quiescent_hits) + 1


def _render() -> str:
    rows = []
    for name, runs, commit_hits, quiescent_hits in _rows:
        rows.append([
            name,
            f"{len(commit_hits)}/{runs}",
            fmt_mean(mean(commit_hits)),
            f"{len(quiescent_hits)}/{runs}",
            fmt_mean(mean(quiescent_hits)),
        ])
    return render_table(
        "Ablation: per-commit vs quiescent-point view checking "
        f"({len(list(SEEDS))} seeds, buggy programs)",
        ["program", "commit: detected", "commit: mean methods",
         "quiescent: detected", "quiescent: mean methods"],
        rows,
    )


@pytest.fixture(scope="module", autouse=True)
def _emit_table():
    yield
    if _rows:
        emit("ablation_quiescent", _render())


def main() -> None:
    for name, threads, calls in CONFIG:
        _measure(name, threads, calls)
    emit("ablation_quiescent", _render())


if __name__ == "__main__":
    main()
