"""Comparison -- race detection vs atomicity vs refinement (sections 1, 8).

The paper argues refinement catches bugs that race and atomicity checkers
miss, while staying quiet where they raise false alarms.  This benchmark
runs the same logged workload per program, correct and buggy, through all
three checkers of this reproduction:

* the happens-before race detector (FastTrack-style vector clocks),
* the Eraser lockset race detector,
* the Atomizer-style reduction baseline,
* the VYRD refinement checker itself.

Expected shape: on *correct* variants, happens-before reports zero races
and refinement passes, while the lockset detector raises its classic false
alarms (lock handoffs, cache/tree protection changing over time) and
reduction flags the multi-critical-section methods.  On *buggy* variants,
racy bugs surface in both race detectors -- but the B-link tree's
duplicated-data-node bug is race-free and ONLY refinement reports it.
"""

import pytest

from repro.atomicity import check_atomicity
from repro.harness import render_table, run_program

from _common import emit

# (program, threads, calls); both variants of each program are measured
CONFIG = [
    ("multiset-vector", 4, 25),
    ("multiset-tree", 4, 25),
    ("blinktree", 4, 25),
    ("stringbuffer", 4, 25),
    ("cache", 4, 25),
]
SEED = 11

_rows = []


def _measure(name, threads, calls, buggy):
    result = run_program(
        name,
        buggy=buggy,
        num_threads=threads,
        calls_per_thread=calls,
        seed=SEED,
        races="both",
    )
    races = result.race_outcome
    atomicity = check_atomicity(result.log)
    refinement = result.vyrd.check_offline()
    _rows.append((
        name,
        "buggy" if buggy else "correct",
        len(races.hb_races),
        len(races.lockset_races),
        len(atomicity.violations),
        len(refinement.violations),
    ))
    return races, atomicity, refinement


@pytest.mark.parametrize(
    "name,threads,calls", CONFIG, ids=[c[0] for c in CONFIG]
)
def test_correct_variants_are_hb_race_free(benchmark, name, threads, calls):
    races, _, refinement = benchmark.pedantic(
        _measure, args=(name, threads, calls, False), rounds=1, iterations=1
    )
    # no false alarms from happens-before, and the implementation refines
    assert not races.hb_races, [str(r) for r in races.hb_races]
    assert refinement.ok, str(refinement.first_violation)


@pytest.mark.parametrize(
    "name,threads,calls", CONFIG, ids=[c[0] for c in CONFIG]
)
def test_buggy_variants_measured(benchmark, name, threads, calls):
    races, _, refinement = benchmark.pedantic(
        _measure, args=(name, threads, calls, True), rounds=1, iterations=1
    )
    if name == "multiset-vector":
        # the moved-acquire bug is a textbook race: both detectors see it
        assert races.hb_races and races.lockset_races
    if name == "blinktree":
        # the duplicated-data-node bug is race-free by construction --
        # only refinement can report it (when the schedule triggers it)
        assert not races.hb_races


def _render() -> str:
    rows = [list(row) for row in _rows]
    return render_table(
        "Race detection vs atomicity vs refinement (same logged runs)",
        ["program", "variant", "hb races", "lockset races",
         "atomicity flags", "refinement violations"],
        rows,
    )


@pytest.fixture(scope="module", autouse=True)
def _emit_table():
    yield
    if _rows:
        emit("race_comparison", _render())


def main() -> None:
    for name, threads, calls in CONFIG:
        for buggy in (False, True):
            _measure(name, threads, calls, buggy)
    emit("race_comparison", _render())


if __name__ == "__main__":
    main()
