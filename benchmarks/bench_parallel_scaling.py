"""Parallel exploration scaling: runs/sec and speedup vs. worker count.

Sweeps ``parallel_swarm`` over a jobs grid (default 1, 2, 4, 8) on one
workload-registry program and writes a machine-readable
``BENCH_parallel_scaling.json`` at the repo root: per-job-count wall-clock,
runs/sec, speedup vs. the serial (jobs=1) baseline, and a campaign-signature
equality check proving every parallel sweep produced outcomes identical to
serial.  The recorded ``cpu_count`` contextualizes the speedup column --
on a single-CPU host the engine cannot beat serial no matter how it shards.

``--mode exhaustive [--reduce static]`` sweeps ``parallel_exhaustive``
instead, optionally with the static sleep-set reducer
(:mod:`repro.concurrency.reduction`) -- the signature-equality gate then
also proves the *reduced* frontier shards coordination-free without
changing the covered schedule set.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py
    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --smoke  # CI
    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py \\
        --mode exhaustive --reduce static --program blinktree \\
        --threads 3 --calls 1 --workload-seed 7

``--smoke`` shrinks the sweep to jobs {1, 2} with a tiny campaign so CI can
exercise the whole engine (pool dispatch, merge, equality check) in seconds.
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.concurrency.parallel import parallel_exhaustive, parallel_swarm
from repro.harness import ProgramSpec

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_parallel_scaling.json")


def run_sweep(
    program: str,
    runs: int,
    jobs_list,
    threads: int,
    calls: int,
    workload_seed: int = 0,
    mode: str = "swarm",
    reduce: str = None,
) -> dict:
    reducer = None
    if reduce == "static":
        from repro.concurrency.reduction import StaticReducer
        from repro.lint.effects import analyze_program

        reducer = StaticReducer.from_effects(analyze_program(program))
    spec = ProgramSpec(
        program,
        num_threads=threads,
        calls_per_thread=calls,
        workload_seed=workload_seed,
        # exhaustive enumeration needs a finite tree
        daemons=(mode != "exhaustive"),
    )
    rows = []
    serial_signature = None
    serial_seconds = None
    for jobs in jobs_list:
        start = time.perf_counter()
        if mode == "exhaustive":
            result = parallel_exhaustive(
                spec, max_runs=runs, jobs=jobs, reducer=reducer
            )
        else:
            result = parallel_swarm(spec, num_runs=runs, jobs=jobs)
        seconds = time.perf_counter() - start
        signature = result.signature()
        if serial_signature is None:
            serial_signature = signature
            serial_seconds = seconds
        rows.append({
            "jobs": jobs,
            "seconds": round(seconds, 3),
            "runs_per_sec": (
                round(result.num_runs / seconds, 2) if seconds > 0 else None
            ),
            "speedup_vs_serial": (
                round(serial_seconds / seconds, 2) if seconds > 0 else None
            ),
            "outcomes_equal_serial": signature == serial_signature,
            "num_runs": result.num_runs,
            "pruned": result.pruned,
            "num_failures": len(result.failures),
        })
    return {
        "benchmark": "parallel_scaling",
        "program": program,
        "mode": mode,
        "reduce": reduce,
        "runs": runs,
        "threads": threads,
        "calls_per_thread": calls,
        "workload_seed": workload_seed,
        "cpu_count": os.cpu_count(),
        "all_outcomes_equal_serial": all(r["outcomes_equal_serial"] for r in rows),
        "rows": rows,
    }


def render(report: dict) -> str:
    flavor = report["mode"]
    if report["reduce"]:
        flavor += f" --reduce {report['reduce']}"
    lines = [
        f"parallel {flavor} scaling: {report['program']} "
        f"({report['threads']} threads x {report['calls_per_thread']} calls, "
        f"{report['runs']} runs, {report['cpu_count']} CPU(s))",
        f"{'jobs':>5}  {'seconds':>8}  {'runs/sec':>9}  {'speedup':>8}  outcomes==serial",
    ]
    for row in report["rows"]:
        lines.append(
            f"{row['jobs']:>5}  {row['seconds']:>8.3f}  {row['runs_per_sec']:>9}"
            f"  {row['speedup_vs_serial']:>7}x  {row['outcomes_equal_serial']}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--program", default="multiset-vector")
    parser.add_argument("--runs", type=int, default=500,
                        help="swarm: seeded runs; exhaustive: run budget")
    parser.add_argument("--jobs", type=int, nargs="+", default=[1, 2, 4, 8])
    parser.add_argument("--threads", type=int, default=3)
    parser.add_argument("--calls", type=int, default=10)
    parser.add_argument("--workload-seed", type=int, default=0)
    parser.add_argument("--mode", choices=("swarm", "exhaustive"),
                        default="swarm")
    parser.add_argument("--reduce", choices=("static",),
                        help="exhaustive: static sleep-set reduction")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI sweep: jobs {1, 2}, 40 runs")
    parser.add_argument("--out", default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    if args.smoke:
        args.jobs = [1, 2]
        if args.mode == "swarm":
            args.runs = min(args.runs, 40)
            args.threads = 2
            args.calls = 4
    report = run_sweep(
        args.program, args.runs, args.jobs, args.threads, args.calls,
        args.workload_seed, mode=args.mode, reduce=args.reduce,
    )
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(render(report))
    print(f"report written to {args.out}")
    return 0 if report["all_outcomes_equal_serial"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
