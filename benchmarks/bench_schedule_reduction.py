"""Schedule reduction: static sleep-set pruning vs unreduced enumeration.

For each small registry config, exhaustively enumerates the schedule tree
twice -- unreduced and with ``--reduce static`` sleep-set pruning driven by
the :mod:`repro.lint.effects` independence matrix -- and gates on the
**equivalence** the reduction claims to preserve:

1. both enumerations exhaust their tree (otherwise nothing is comparable);
2. the identical set of distinct happens-before orders is covered
   (canonical Mazurkiewicz-trace fingerprints of every run's log,
   :func:`repro.harness.log_hb_fingerprint`);
3. the identical violation set is reported (failure type + message --
   non-empty on the buggy configs, so the gate proves bug-finding power
   is preserved, not just clean-run equivalence);
4. on the gate configs, the reduced run enumerates >= 5x fewer schedules.

Daemons are disabled (``ProgramSpec(daemons=False)``): their
always-runnable loops make the exhaustive tree infinite.  Writes a
machine-readable ``BENCH_schedule_reduction.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_schedule_reduction.py
    PYTHONPATH=src python benchmarks/bench_schedule_reduction.py --smoke  # CI

``--smoke`` keeps the two fastest gate configs so CI exercises the whole
pipeline (analysis, reduced frontier, fingerprints, equivalence) in under
a minute.
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.concurrency.parallel import parallel_exhaustive
from repro.concurrency.reduction import StaticReducer
from repro.harness import ProgramSpec
from repro.lint.effects import analyze_program

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_schedule_reduction.json")

# (program, buggy, threads, calls, workload_seed, in_smoke)
# Workload seeds pick the operation mix (it is fixed per seed; only the
# schedule varies): blinktree 7 = three lookups, 13 = two lookup+delete
# threads, multiset-vector 16 = two plain inserts -- the one vector-multiset
# shape whose first-free-slot scans stay short enough to exhaust, and whose
# buggy variant (the paper's moved-acquire FindSlot bug) fails refinement.
CASES = [
    ("blinktree", False, 2, 2, 13, True),
    ("multiset-vector", True, 2, 1, 16, True),
    ("blinktree", False, 3, 1, 7, False),
    ("multiset-vector", False, 2, 1, 16, False),
]
MIN_RATIO = 5.0


def _failure_set(result):
    return {
        (
            getattr(failure.error, "remote_type", type(failure.error).__name__),
            str(failure.error),
        )
        for failure in result.failures
    }


def run_case(program, buggy, threads, calls, workload_seed, *,
             reducer, max_runs, jobs):
    spec = ProgramSpec(
        program, buggy=buggy, num_threads=threads, calls_per_thread=calls,
        workload_seed=workload_seed, daemons=False, fingerprint=True,
    )
    start = time.perf_counter()
    base = parallel_exhaustive(spec, max_runs=max_runs, jobs=jobs)
    base_seconds = time.perf_counter() - start
    start = time.perf_counter()
    reduced = parallel_exhaustive(
        spec, max_runs=max_runs, jobs=jobs, reducer=reducer
    )
    reduced_seconds = time.perf_counter() - start

    hb_equal = base.outcomes() == reduced.outcomes()
    violations_base = _failure_set(base)
    violations_reduced = _failure_set(reduced)
    ratio = base.num_runs / max(1, reduced.num_runs)
    return {
        "program": program,
        "buggy": buggy,
        "threads": threads,
        "calls_per_thread": calls,
        "workload_seed": workload_seed,
        "base_runs": base.num_runs,
        "base_exhausted": base.exhausted,
        "base_seconds": round(base_seconds, 3),
        "reduced_runs": reduced.num_runs,
        "reduced_exhausted": reduced.exhausted,
        "reduced_pruned": reduced.pruned,
        "reduced_seconds": round(reduced_seconds, 3),
        "ratio": round(ratio, 1),
        "hb_orders": len(base.outcomes()),
        "hb_orders_equal": hb_equal,
        "violations": len(violations_base),
        "violations_equal": violations_base == violations_reduced,
        "equivalent": (
            base.exhausted and reduced.exhausted and hb_equal
            and violations_base == violations_reduced
        ),
        "gate_ok": (
            base.exhausted and reduced.exhausted and hb_equal
            and violations_base == violations_reduced
            and ratio >= MIN_RATIO
        ),
    }


def render(report: dict) -> str:
    lines = [
        "schedule reduction: static sleep sets vs unreduced exhaustive "
        f"(gate: equivalent coverage and >= {MIN_RATIO:.0f}x fewer runs)",
        f"{'config':<38} {'base':>7} {'reduced':>7} {'ratio':>7}  "
        f"{'HB==':>5} {'viol==':>6}  gate",
    ]
    for row in report["rows"]:
        config = (
            f"{row['program']}{' (buggy)' if row['buggy'] else ''} "
            f"t={row['threads']} c={row['calls_per_thread']} "
            f"seed={row['workload_seed']}"
        )
        lines.append(
            f"{config:<38} {row['base_runs']:>7} {row['reduced_runs']:>7} "
            f"{row['ratio']:>6.1f}x  {str(row['hb_orders_equal']):>5} "
            f"{str(row['violations_equal']):>6}  "
            f"{'OK' if row['gate_ok'] else 'FAIL'}"
        )
    verdict = "PASS" if report["all_gates_ok"] else "FAIL"
    lines.append(f"verdict: {verdict}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--max-runs", type=int, default=60_000,
                        help="per-enumeration schedule budget")
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes (0 = all CPUs)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI subset: the two fastest gate configs")
    parser.add_argument("--out", default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    cases = [c for c in CASES if not args.smoke or c[5]]
    reducers = {}
    rows = []
    for program, buggy, threads, calls, seed, _ in cases:
        if program not in reducers:
            reducers[program] = StaticReducer.from_effects(
                analyze_program(program)
            )
        rows.append(run_case(
            program, buggy, threads, calls, seed,
            reducer=reducers[program], max_runs=args.max_runs,
            jobs=args.jobs,
        ))
    report = {
        "benchmark": "schedule_reduction",
        "min_ratio": MIN_RATIO,
        "max_runs": args.max_runs,
        "smoke": args.smoke,
        "all_gates_ok": all(row["gate_ok"] for row in rows),
        "rows": rows,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(render(report))
    print(f"report written to {args.out}")
    return 0 if report["all_gates_ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
