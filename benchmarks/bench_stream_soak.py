"""Streaming soak: a million records through the verification service.

Drives ``>= 1M`` action records from ``>= 4`` forked producer processes
through the :mod:`repro.serve` pipeline -- sharded hash-chained shard
files, deterministic merge, online refinement checking, per-shard chain
audit -- and writes a machine-readable ``BENCH_stream_soak.json`` at the
repo root with the records/sec trajectory and resident-memory evidence.

Sessions are submitted continuously (``--producers`` at a time) until the
cumulative record count crosses ``--target-records``; each completed
session contributes one trajectory sample and, unless ``--keep``, its
shard files are deleted so disk stays bounded too.  A sampler thread
tracks the daemon's RSS the whole time; the bounded-memory gate requires
the late-phase mean to stay within 1.5x the early-phase mean (no
per-record growth) on top of an absolute 1 GiB ceiling.

The exit code is the soak gate: nonzero if any session's stream broke
(incomplete merge, chain audit failure, daemon error), if memory grew
unboundedly, or if the first session's canonical-order signature diverged
from a single-process rerun.

Usage::

    PYTHONPATH=src python benchmarks/bench_stream_soak.py
    PYTHONPATH=src python benchmarks/bench_stream_soak.py --smoke  # CI

``--smoke`` shrinks the soak to ~5k records from 2 producers so CI can
exercise the full pipeline (fork, shard, merge, check, audit, cleanup)
in seconds.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import shutil
import sys
import tempfile
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait

from repro.core import log_signature
from repro.harness import run_program
from repro.serve import LocalDirectoryStore, ServeSession, session_checkers
from repro.serve.producer import _producer_main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_stream_soak.json")

_PAGE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def _rss_bytes() -> int:
    try:
        with open("/proc/self/statm", "r") as handle:
            return int(handle.read().split()[1]) * _PAGE
    except OSError:  # pragma: no cover - non-Linux fallback
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


class RssSampler(threading.Thread):
    """Samples the daemon process's resident set until stopped."""

    def __init__(self, interval: float = 0.25):
        super().__init__(name="rss-sampler", daemon=True)
        self.interval = interval
        self.samples: list = []  # (elapsed_seconds, rss_bytes)
        self._halt = threading.Event()
        self._start_time = time.perf_counter()

    def run(self) -> None:
        while not self._halt.is_set():
            self.samples.append(
                (time.perf_counter() - self._start_time, _rss_bytes())
            )
            self._halt.wait(self.interval)

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


def _memory_evidence(samples) -> dict:
    """Bounded-memory gate: late-phase RSS must not outgrow early-phase."""
    if len(samples) < 4:
        rss = [rss for _, rss in samples] or [_rss_bytes()]
        peak = max(rss)
        return {
            "peak_rss_mb": round(peak / 2**20, 1),
            "early_mean_mb": round(rss[0] / 2**20, 1),
            "late_mean_mb": round(rss[-1] / 2**20, 1),
            "growth_ratio": 1.0,
            "bounded": peak < 2**30,
        }
    third = max(1, len(samples) // 3)
    early = [rss for _, rss in samples[:third]]
    late = [rss for _, rss in samples[-third:]]
    early_mean = sum(early) / len(early)
    late_mean = sum(late) / len(late)
    peak = max(rss for _, rss in samples)
    ratio = late_mean / early_mean if early_mean else 1.0
    return {
        "peak_rss_mb": round(peak / 2**20, 1),
        "early_mean_mb": round(early_mean / 2**20, 1),
        "late_mean_mb": round(late_mean / 2**20, 1),
        "growth_ratio": round(ratio, 3),
        "bounded": ratio <= 1.5 and peak < 2**30,
    }


def _thin(points, cap: int = 200):
    if len(points) <= cap:
        return points
    step = len(points) / cap
    return [points[int(i * step)] for i in range(cap)] + [points[-1]]


def run_soak(args) -> dict:
    root = args.root or tempfile.mkdtemp(prefix="vyrd-soak-")
    store = LocalDirectoryStore(root)
    ctx = multiprocessing.get_context("fork")
    checker_factory, race_factory = session_checkers(args.program)
    run_kwargs = {
        "num_threads": args.threads,
        "calls_per_thread": args.calls,
        "mode": "view",
    }

    def one_session(seed: int) -> tuple:
        name = f"run-{seed:05d}"
        process = ctx.Process(
            target=_producer_main,
            args=(store.root, name, args.program, seed, args.shards,
                  False, args.batch_records, run_kwargs),
            name=f"producer-{name}",
        )
        session = ServeSession(
            store, name, args.shards,
            checker_factory=checker_factory,
            race_checker_factory=race_factory,
            queue_records=args.queue_records,
            timeout=args.timeout,
        )
        process.start()
        try:
            result = session.run(process)
        finally:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - wedged producer
                process.terminate()
                process.join()
        return seed, result

    sampler = RssSampler()
    sampler.start()
    start = time.perf_counter()
    trajectory = []
    sessions_ok = 0
    sessions_failed = []
    violations = 0
    total_records = 0
    first_signature = None
    next_seed = args.base_seed
    last_sample = (0.0, 0)  # (elapsed, records) for windowed rates

    with ThreadPoolExecutor(max_workers=args.producers) as pool:
        pending = set()
        for _ in range(args.producers):
            pending.add(pool.submit(one_session, next_seed))
            next_seed += 1
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                seed, result = future.result()
                total_records += result.records
                if result.ok:
                    sessions_ok += 1
                else:
                    sessions_failed.append({
                        "session": result.session,
                        "error": result.error,
                        "chain_ok": result.chain_ok,
                        "complete": result.complete,
                    })
                if result.outcome is not None and not result.outcome.ok:
                    violations += 1
                if seed == args.base_seed:
                    first_signature = result.signature
                elapsed = time.perf_counter() - start
                window = elapsed - last_sample[0]
                trajectory.append({
                    "t": round(elapsed, 3),
                    "sessions": sessions_ok + len(sessions_failed),
                    "records": total_records,
                    "records_per_sec": round(total_records / elapsed, 1),
                    "window_records_per_sec": round(
                        (total_records - last_sample[1]) / window, 1
                    ) if window > 0 else None,
                    "rss_mb": round(_rss_bytes() / 2**20, 1),
                })
                last_sample = (elapsed, total_records)
                if not args.keep:
                    shutil.rmtree(
                        os.path.join(root, result.session),
                        ignore_errors=True,
                    )
                if total_records < args.target_records:
                    pending.add(pool.submit(one_session, next_seed))
                    next_seed += 1
    elapsed = time.perf_counter() - start
    sampler.stop()
    if not args.keep and args.root is None:
        shutil.rmtree(root, ignore_errors=True)

    # Determinism spot-check: the first session's merged canonical order
    # must hash identically to a single-process run of the same seed.
    solo = run_program(args.program, seed=args.base_seed, **run_kwargs)
    direct_signature = log_signature(solo.log)
    signature_match = first_signature == direct_signature

    memory = _memory_evidence(sampler.samples)
    ok = (
        not sessions_failed
        and total_records >= args.target_records
        and memory["bounded"]
        and signature_match
    )
    return {
        "benchmark": "stream_soak",
        "program": args.program,
        "producers": args.producers,
        "shards_per_session": args.shards,
        "threads": args.threads,
        "calls_per_thread": args.calls,
        "queue_records": args.queue_records,
        "batch_records": args.batch_records,
        "target_records": args.target_records,
        "cpu_count": os.cpu_count(),
        "ok": ok,
        "records": total_records,
        "sessions": sessions_ok + len(sessions_failed),
        "sessions_ok": sessions_ok,
        "sessions_failed": sessions_failed,
        "violations": violations,
        "seconds": round(elapsed, 3),
        "records_per_sec": round(total_records / elapsed, 1),
        "signature_match": signature_match,
        "first_session_signature": first_signature,
        "direct_signature": direct_signature,
        "memory": memory,
        "rss_samples": [
            {"t": round(t, 2), "rss_mb": round(rss / 2**20, 1)}
            for t, rss in _thin(sampler.samples)
        ],
        "trajectory": _thin(trajectory),
    }


def render(report: dict) -> str:
    memory = report["memory"]
    lines = [
        f"stream soak: {report['records']:,} records through "
        f"{report['producers']} producers x {report['shards_per_session']} "
        f"shards in {report['seconds']:.1f}s "
        f"({report['records_per_sec']:,.0f} rec/s)",
        f"  sessions: {report['sessions_ok']}/{report['sessions']} ok, "
        f"{report['violations']} violation(s) detected",
        f"  memory: peak {memory['peak_rss_mb']} MB, growth ratio "
        f"{memory['growth_ratio']} "
        f"({'bounded' if memory['bounded'] else 'UNBOUNDED'})",
        f"  determinism: first-session signature "
        f"{'matches' if report['signature_match'] else 'DIVERGED from'} "
        f"single-process rerun",
        f"  verdict: {'OK' if report['ok'] else 'FAILED'}",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--program", default="multiset-vector")
    parser.add_argument("--producers", type=int, default=4,
                        help="concurrent producer processes (>= 4 for the "
                             "full soak)")
    parser.add_argument("--target-records", type=int, default=1_000_000)
    parser.add_argument("--base-seed", type=int, default=0)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--calls", type=int, default=300,
                        help="method calls per thread per session")
    parser.add_argument("--shards", type=int, default=2,
                        help="shard files per session")
    parser.add_argument("--queue-records", type=int, default=4096)
    parser.add_argument("--batch-records", type=int, default=64)
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="per-session ingest deadline (seconds)")
    parser.add_argument("--root", metavar="DIR",
                        help="store directory (default: temp, deleted "
                             "afterwards)")
    parser.add_argument("--keep", action="store_true",
                        help="keep shard files instead of deleting each "
                             "session after verification")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="JSON report path (default: repo root)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized soak: ~5k records from 2 producers")
    args = parser.parse_args(argv)
    if args.smoke:
        args.producers = min(args.producers, 2)
        args.target_records = min(args.target_records, 5_000)
        args.threads = 3
        args.calls = 150
    report = run_soak(args)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=1)
        handle.write("\n")
    print(render(report))
    print(f"report written to {args.out}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
