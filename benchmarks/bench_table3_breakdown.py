"""Table 3 -- Running time breakdown.

For each program the paper reports four times: the program alone, the
program with logging, the program with logging plus the *online* VYRD
verification thread, and VYRD alone checking the finished log offline.

Shape claims reproduced:

* ``prog+logging`` is close to ``prog alone`` (logging is cheap);
* ``prog+logging+VYRD`` (online) costs a small multiple of the logged run
  (the paper sees roughly 2-8x across its four programs);
* offline checking is cheaper than the combined online run.

Thread/method counts follow the paper's Table 3 (Vector 20x200,
StringBuffer 10x30, BLinkTree 10x600, Cache 10x500), scaled down where the
simulator would otherwise dominate wall-clock (see EXPERIMENTS.md).
"""

import pytest

from repro.harness import breakdown_experiment, render_table

from _common import emit, fmt_secs

# (program, threads, calls) -- paper's counts, scaled where noted
TABLE3_CONFIG = [
    ("java-vector", 20, 50),   # paper: 20 threads x 200 calls
    ("stringbuffer", 10, 30),  # paper: 10 x 30 (exact)
    ("blinktree", 10, 60),     # paper: 10 x 600
    ("cache", 10, 50),         # paper: 10 x 500
]
SEEDS = range(2)

_rows = []


def _run_row(name: str, threads: int, calls: int):
    result = breakdown_experiment(
        name, num_threads=threads, calls_per_thread=calls, seeds=SEEDS
    )
    _rows.append(result)
    return result


@pytest.mark.parametrize(
    "name,threads,calls", TABLE3_CONFIG, ids=[c[0] for c in TABLE3_CONFIG]
)
def test_table3_row(benchmark, name, threads, calls):
    result = benchmark.pedantic(
        _run_row, args=(name, threads, calls), rounds=1, iterations=1
    )
    assert result.prog_alone > 0
    # online checking adds real work on top of the logged run
    assert result.prog_logging_online_vyrd > result.prog_logging


def _render() -> str:
    rows = []
    for result in _rows:
        rows.append([
            result.program,
            f"{result.num_threads}/{result.calls_per_thread}",
            fmt_secs(result.prog_alone),
            fmt_secs(result.prog_logging),
            fmt_secs(result.prog_logging_online_vyrd),
            fmt_secs(result.vyrd_offline),
        ])
    return render_table(
        "Table 3: running time breakdown (CPU s, summed over "
        f"{len(list(SEEDS))} seeds)",
        ["program", "#thrd/#mthd", "prog alone", "prog+logging",
         "prog+logging+VYRD", "VYRD alone (offline)"],
        rows,
    )


@pytest.fixture(scope="module", autouse=True)
def _emit_table():
    yield
    if _rows:
        emit("table3_breakdown", _render())


def main() -> None:
    for name, threads, calls in TABLE3_CONFIG:
        _run_row(name, threads, calls)
    emit("table3_breakdown", _render())


if __name__ == "__main__":
    main()
