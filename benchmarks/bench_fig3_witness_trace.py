"""Figure 3 -- Refinement of multiset: the witness interleaving.

The paper's Fig. 3 shows four concurrently executing operations --
LookUp(3), Insert(3), Insert(4), Delete(3) -- and how the order of commit
actions serializes them.  Its key observation: "although the execution of
LookUp(3) starts before the execution of Insert(3) and ends before the
execution of Insert(3) ends, LookUp(3) returns true since its commit action
comes after that of Insert(3)".

This benchmark replays exactly that program on the simulator, searches the
seed space for a schedule exhibiting the paper's phenomenon (an overlapping
LookUp(3) that returns True against an Insert(3) still in flight), renders
the Fig. 3-style lane diagram plus the witness interleaving, and verifies
the trace refines the multiset spec.
"""

from repro import Kernel, Vyrd, render_trace, render_witness
from repro.core import build_witness
from repro.multiset import MultisetSpec, VectorMultiset, multiset_view

from _common import emit


def _run_fig3_program(seed: int):
    vyrd = Vyrd(spec_factory=MultisetSpec, mode="view",
                impl_view_factory=multiset_view)
    kernel = Kernel(seed=seed, tracer=vyrd.tracer)
    multiset = VectorMultiset(size=8)
    vds = vyrd.wrap(multiset)
    results = {}

    def look_up_3(ctx):
        results["lookup3"] = yield from vds.lookup(ctx, 3)

    def insert_3(ctx):
        results["insert3"] = yield from vds.insert(ctx, 3)

    def insert_4(ctx):
        results["insert4"] = yield from vds.insert(ctx, 4)

    def delete_3(ctx):
        results["delete3"] = yield from vds.delete(ctx, 3)

    kernel.spawn(look_up_3, name="gray")
    kernel.spawn(insert_3, name="t2")
    kernel.spawn(insert_4, name="t3")
    kernel.spawn(delete_3, name="t4")
    kernel.run()
    return vyrd, results


def _is_paper_phenomenon(vyrd, results) -> bool:
    """LookUp(3) overlapped Insert(3), yet returned True (commit order)."""
    if results.get("lookup3") is not True:
        return False
    witness = build_witness(vyrd.log)
    executions = {e.method + repr(e.args): e for e in witness.executions.values()}
    lookup = executions.get("lookup(3,)")
    insert = executions.get("insert(3,)")
    return (
        lookup is not None
        and insert is not None
        and lookup.call_seq < insert.call_seq  # lookup started first...
        and lookup.overlaps(insert)
    )


def _find_and_render():
    for seed in range(500):
        vyrd, results = _run_fig3_program(seed)
        outcome = vyrd.check_offline()
        assert outcome.ok, f"correct multiset flagged at seed {seed}"
        if _is_paper_phenomenon(vyrd, results):
            text = "\n".join([
                f"Figure 3 reproduction (seed {seed}): LookUp(3) began before "
                "Insert(3) yet returns True,",
                "because its window extends past Insert(3)'s commit action.",
                "",
                render_trace(vyrd.log),
                "",
                render_witness(vyrd.log),
                "",
                f"results: {results}",
                f"refinement check: {outcome.summary()}",
            ])
            return text
    raise AssertionError("Fig. 3 phenomenon not found in 500 seeds")


def test_fig3_witness_interleaving(benchmark):
    text = benchmark.pedantic(_find_and_render, rounds=1, iterations=1)
    assert "LookUp(3)" in text or "lookup" in text
    emit("fig3_witness_trace", text)


def main() -> None:
    emit("fig3_witness_trace", _find_and_render())


if __name__ == "__main__":
    main()
