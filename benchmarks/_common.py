"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*.py`` module regenerates one table or figure of the paper's
evaluation.  Every module works in two modes:

* under ``pytest benchmarks/ --benchmark-only`` -- each row's computation is
  timed through pytest-benchmark, and the regenerated table is written to
  ``benchmarks/results/<name>.txt`` at the end of the module's run;
* as a plain script (``python benchmarks/bench_table1_detection.py``) --
  the table is printed to stdout.

Workloads are scaled down from the paper's 2.4 GHz-Pentium-sized runs (see
EXPERIMENTS.md); the claims under test are the *shapes*, not the absolute
numbers.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def emit(name: str, text: str) -> str:
    """Print a regenerated table/figure and persist it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print()
    print(text)
    return path


def fmt_mean(value) -> str:
    if value is None:
        return "-"
    return f"{value:.1f}"


def fmt_secs(value) -> str:
    if value is None:
        return "-"
    return f"{value:.3f}"
