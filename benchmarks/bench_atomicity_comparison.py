"""Comparison -- refinement vs atomicity checking (paper sections 1, 2.1, 8).

The paper's case for refinement over atomicity: correct, useful
implementations -- ``InsertPair`` with its two reservation critical
sections, the B-link tree with its restructuring writes (the ``W(p) W(q)``
pattern), methods with contention-induced exceptional terminations -- are
**not reducible to atomic blocks**, so an atomicity checker flags them, yet
they refine a natural specification.

For each correct program we run the same logged workload through both
checkers and report refinement violations (expected: none) against
atomicity flags (expected: many, concentrated on exactly the methods the
paper names)."""

import pytest

from repro import Kernel, Vyrd
from repro.atomicity import check_atomicity
from repro.harness import render_table
from repro.harness.runner import _resolve

from _common import emit

# (program, threads, calls, reduction_expected_to_fail)
# StringBuffer's methods hold properly nested monitors for their whole
# bodies, so they *are* reducible -- a useful control row.
CONFIG = [
    ("multiset-vector", 6, 25, True),
    ("multiset-tree", 6, 25, True),
    ("blinktree", 6, 25, True),
    ("stringbuffer", 6, 25, False),
]
SEED = 11

_rows = []


def _run_logged(name, threads, calls):
    """run_program, but with lock/read events enabled for the Atomizer."""
    import random

    program = _resolve(name)
    built = program.build(False, threads)
    vyrd = Vyrd(
        spec_factory=built.spec_factory,
        mode="view",
        impl_view_factory=built.view_factory,
        invariants=built.invariants,
        replay_registry=built.replay_registry,
        log_locks=True,
        log_reads=True,
    )
    kernel = Kernel(seed=SEED, tracer=vyrd.tracer)
    vds = vyrd.wrap(built.impl)
    for index in range(threads):
        body = built.make_worker(vds, random.Random(SEED * 131 + index), index, calls)
        kernel.spawn(body, name=f"app-{index}")
    for daemon in built.daemons:
        kernel.spawn(daemon, daemon=True)
    kernel.run()
    return vyrd


def _measure(name, threads, calls):
    vyrd = _run_logged(name, threads, calls)
    refinement = vyrd.check_offline()
    atomicity = check_atomicity(vyrd.log)
    row = (
        name,
        refinement.methods_checked,
        len(refinement.violations),
        len(atomicity.violations),
        sorted(atomicity.flagged_methods),
    )
    _rows.append(row)
    return refinement, atomicity


@pytest.mark.parametrize(
    "name,threads,calls,expect_flags", CONFIG, ids=[c[0] for c in CONFIG]
)
def test_refinement_accepts_where_atomicity_flags(
    benchmark, name, threads, calls, expect_flags
):
    refinement, atomicity = benchmark.pedantic(
        _measure, args=(name, threads, calls), rounds=1, iterations=1
    )
    # correct implementations refine their specs...
    assert refinement.ok, str(refinement.first_violation)
    # ...but the multi-critical-section ones defeat reduction
    assert atomicity.ok != expect_flags, (
        f"{name}: expected reduction {'failures' if expect_flags else 'success'}"
    )


def _render() -> str:
    rows = [
        [name, methods, ref_violations, atom_violations, ", ".join(flagged)]
        for name, methods, ref_violations, atom_violations, flagged in _rows
    ]
    return render_table(
        "Refinement vs atomicity on correct implementations (section 8)",
        ["program", "methods run", "refinement violations",
         "atomicity flags", "non-reducible methods"],
        rows,
    )


@pytest.fixture(scope="module", autouse=True)
def _emit_table():
    yield
    if _rows:
        emit("atomicity_comparison", _render())


def main() -> None:
    for name, threads, calls in CONFIG:
        _measure(name, threads, calls)
    emit("atomicity_comparison", _render())


if __name__ == "__main__":
    main()
