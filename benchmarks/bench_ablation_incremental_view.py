"""Ablation + checker throughput -- making the verification hot path O(delta).

Two experiments share this module:

1. **Incremental view ablation** (section 6.4, the pytest part): the same
   Cache trace checked with the incremental :class:`ContributionView` vs a
   :class:`FunctionView` that recomputes the whole store view at every
   commit.
2. **Checker throughput** (``main``/``--smoke``): a synthetic growing-map
   workload where the abstract state reaches N keys, checked under three
   verifier configurations --

   * ``legacy``        -- full view recompute + full dict comparison at
     every commit (the original hot path);
   * ``incremental``   -- incremental viewI, but still a full ``viewS``
     rebuild + dict comparison per commit;
   * ``differential``  -- incremental viewI + the dirty-key
     :class:`~repro.core.ViewComparator` (the new default).

   Writes ``BENCH_checker_throughput.json`` at the repo root with
   per-size/per-mode commits-per-second rows plus a chunked commits/sec
   trajectory.  Expected shape: legacy/incremental per-commit cost grows
   with the structure size while differential stays near-flat, so the
   margin widens as N grows.
"""

import argparse
import json
import os
import sys
import time

import pytest

from repro.core import (
    CallAction,
    CommitAction,
    ContributionView,
    FunctionView,
    Log,
    RefinementChecker,
    ReturnAction,
    Specification,
    VIEW_ABSENT,
    WriteAction,
    mutator,
    prefix_unit,
)
from repro.boxwood import cache_view
from repro.harness import render_table, run_program

from _common import emit, fmt_secs

BLOCK = 8
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_checker_throughput.json")
_rows = []


def _full_cache_view():
    """A non-incremental view computing the same canonical value."""
    prototype = cache_view(BLOCK)
    return FunctionView(prototype.compute_full)


def _measure(num_threads: int, calls: int):
    run = run_program(
        "cache", buggy=False, num_threads=num_threads, calls_per_thread=calls,
        seed=17, log_level="view",
    )
    session = run.vyrd

    start = time.process_time()
    incremental = session.check_offline()
    incremental_cpu = time.process_time() - start

    session.impl_view_factory = _full_cache_view
    start = time.process_time()
    full = session.check_offline()
    full_cpu = time.process_time() - start

    assert incremental.ok and full.ok
    row = (num_threads, calls, len(run.log), incremental_cpu, full_cpu)
    _rows.append(row)
    return row


@pytest.mark.parametrize("num_threads,calls", [(4, 40), (8, 60), (16, 60)],
                         ids=["small", "medium", "large"])
def test_incremental_vs_full(benchmark, num_threads, calls):
    row = benchmark.pedantic(_measure, args=(num_threads, calls), rounds=1,
                             iterations=1)
    _, _, _, incremental_cpu, full_cpu = row
    # both finish; the incremental checker should not be dramatically slower
    assert incremental_cpu <= full_cpu * 2 + 0.05


def _render() -> str:
    rows = [
        [f"{threads}x{calls}", records, fmt_secs(inc), fmt_secs(full),
         f"{full / inc:.2f}" if inc > 0 else "-"]
        for threads, calls, records, inc, full in _rows
    ]
    return render_table(
        "Ablation: incremental vs full-recompute viewI (Cache workload)",
        ["workload", "log records", "incremental (s)", "full recompute (s)",
         "full/incremental"],
        rows,
    )


@pytest.fixture(scope="module", autouse=True)
def _emit_table():
    yield
    if _rows:
        emit("ablation_incremental_view", _render())


# -- checker throughput: full vs differential comparison ---------------------


class _MapSpec(Specification):
    """A plain map: the abstract state grows to N keys, so a full viewS
    rebuild + comparison at every commit is O(N) while the dirty-key
    protocol touches exactly one key."""

    tracks_view_delta = True

    def __init__(self):
        self.data = {}

    @mutator
    def set(self, key, value, *, result):
        self.data[key] = value
        self._touch(key)

    def view(self):
        return {key: (value,) for key, value in self.data.items()}

    def view_at(self, key):
        return (self.data[key],) if key in self.data else VIEW_ABSENT


def _map_view(incremental: bool):
    if incremental:
        return ContributionView(
            unit_of=prefix_unit("m[", stop="]"),
            contribute=lambda state, unit: (unit[2:], state.get(f"{unit}]")),
            aggregate="list",
        )
    return FunctionView(
        lambda state: {
            loc[2:-1]: (value,) for loc, value in state.items_with_prefix("m[")
        }
    )


def _map_log(size: int) -> Log:
    """``size`` set() executions on distinct keys: by commit ``i`` the
    structure holds ``i`` keys, so per-commit full-comparison cost grows
    linearly across the log."""
    actions = []
    for index in range(size):
        key = f"k{index:06d}"
        actions.extend([
            CallAction(0, index, "set", (key, index)),
            WriteAction(0, index, f"m[{key}]", None, index),
            CommitAction(0, index),
            ReturnAction(0, index, "set", None),
        ])
    return Log(actions)


MODES = {
    "legacy": dict(incremental=False, differential=False),
    "incremental": dict(incremental=True, differential=False),
    "differential": dict(incremental=True, differential=True),
}


def _throughput(log: Log, incremental: bool, differential: bool,
                chunks: int = 8) -> dict:
    checker = RefinementChecker(
        _MapSpec(),
        mode="view",
        impl_view=_map_view(incremental),
        differential=differential,
    )
    actions = list(log)
    commits = sum(1 for a in actions if isinstance(a, CommitAction))
    chunk = max(1, len(actions) // chunks)
    trajectory = []
    total = 0.0
    for start in range(0, len(actions), chunk):
        batch = actions[start:start + chunk]
        begin = time.process_time()
        checker.feed(batch)
        elapsed = time.process_time() - begin
        total += elapsed
        batch_commits = sum(1 for a in batch if isinstance(a, CommitAction))
        trajectory.append(
            round(batch_commits / elapsed) if elapsed > 0 else None
        )
    outcome = checker.finish()
    assert outcome.ok, outcome.first_violation
    return {
        "cpu_seconds": round(total, 4),
        "commits": commits,
        "commits_per_sec": round(commits / total) if total > 0 else None,
        "per_commit_us": round(total / commits * 1e6, 1) if commits else None,
        "commits_per_sec_trajectory": trajectory,
    }


def run_throughput(sizes, out_path: str = DEFAULT_OUT) -> dict:
    report = {"workload": "synthetic map (1 mutator per commit)", "rows": []}
    for size in sizes:
        log = _map_log(size)
        row = {"structure_size": size, "records": len(list(log))}
        for mode, config in MODES.items():
            row[mode] = _throughput(log, **config)
        full = row["legacy"]["cpu_seconds"]
        diff = row["differential"]["cpu_seconds"]
        row["speedup_vs_legacy"] = round(full / diff, 2) if diff > 0 else None
        report["rows"].append(row)
    # the gate: the differential margin must grow with the structure size
    speedups = [row["speedup_vs_legacy"] for row in report["rows"]]
    report["margin_grows_with_size"] = (
        len(speedups) < 2 or speedups[-1] > speedups[0]
    )
    report["differential_wins_at_scale"] = speedups[-1] is not None and speedups[-1] > 1.0
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    lines = [
        f"  N={row['structure_size']:>6}: "
        + "  ".join(
            f"{mode}={row[mode]['per_commit_us']:>8.1f}us/commit"
            for mode in MODES
        )
        + f"  speedup={row['speedup_vs_legacy']}x"
        for row in report["rows"]
    ]
    print("checker throughput (per-commit cost by comparison mode):")
    print("\n".join(lines))
    print(f"report -> {out_path}")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI")
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument("--table", action="store_true",
                        help="also regenerate the pytest ablation table")
    args = parser.parse_args(argv)
    if args.table:
        for threads, calls in [(4, 40), (8, 60), (16, 60)]:
            _measure(threads, calls)
        emit("ablation_incremental_view", _render())
    sizes = [200, 400] if args.smoke else [500, 1000, 2000, 4000]
    report = run_throughput(sizes, args.out)
    ok = report["margin_grows_with_size"] and report["differential_wins_at_scale"]
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
