"""Ablation -- incremental vs full-recompute view checking (section 6.4).

The paper avoids "re-traversing the entire program state at each
verification step" by computing ``viewI`` incrementally from the locations
each write dirties.  This ablation quantifies that choice on the Cache
workload (the one with the most fine-grained writes): the same trace is
checked twice, once with the incremental :class:`ContributionView` and once
with a :class:`FunctionView` that recomputes the whole store view at every
commit.

Expected shape: the incremental checker scales with the number of *dirtied*
units per commit, the full recompute with the *total* number of handles --
so the gap widens as the store grows.
"""

import time

import pytest

from repro.core import FunctionView
from repro.boxwood import cache_view
from repro.harness import render_table, run_program

from _common import emit, fmt_secs

BLOCK = 8
_rows = []


def _full_cache_view():
    """A non-incremental view computing the same canonical value."""
    prototype = cache_view(BLOCK)
    return FunctionView(prototype.compute_full)


def _measure(num_threads: int, calls: int):
    run = run_program(
        "cache", buggy=False, num_threads=num_threads, calls_per_thread=calls,
        seed=17, log_level="view",
    )
    session = run.vyrd

    start = time.process_time()
    incremental = session.check_offline()
    incremental_cpu = time.process_time() - start

    session.impl_view_factory = _full_cache_view
    start = time.process_time()
    full = session.check_offline()
    full_cpu = time.process_time() - start

    assert incremental.ok and full.ok
    row = (num_threads, calls, len(run.log), incremental_cpu, full_cpu)
    _rows.append(row)
    return row


@pytest.mark.parametrize("num_threads,calls", [(4, 40), (8, 60), (16, 60)],
                         ids=["small", "medium", "large"])
def test_incremental_vs_full(benchmark, num_threads, calls):
    row = benchmark.pedantic(_measure, args=(num_threads, calls), rounds=1,
                             iterations=1)
    _, _, _, incremental_cpu, full_cpu = row
    # both finish; the incremental checker should not be dramatically slower
    assert incremental_cpu <= full_cpu * 2 + 0.05


def _render() -> str:
    rows = [
        [f"{threads}x{calls}", records, fmt_secs(inc), fmt_secs(full),
         f"{full / inc:.2f}" if inc > 0 else "-"]
        for threads, calls, records, inc, full in _rows
    ]
    return render_table(
        "Ablation: incremental vs full-recompute viewI (Cache workload)",
        ["workload", "log records", "incremental (s)", "full recompute (s)",
         "full/incremental"],
        rows,
    )


@pytest.fixture(scope="module", autouse=True)
def _emit_table():
    yield
    if _rows:
        emit("ablation_incremental_view", _render())


def main() -> None:
    for threads, calls in [(4, 40), (8, 60), (16, 60)]:
        _measure(threads, calls)
    emit("ablation_incremental_view", _render())


if __name__ == "__main__":
    main()
