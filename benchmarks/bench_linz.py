"""Linearizability search cost vs. history length, with a memoization ablation.

Two row families, both checked by :class:`repro.linz.LinzChecker` with
memoization on and off:

* **registry** -- live registry workloads at increasing history lengths.
  These runs are linearizable, so the search succeeds quickly either way;
  the series shows how the cost of *finding* a witness scales with history
  length (nodes visited, spec clones, wall seconds).
* **adversarial** -- synthetic non-linearizable histories built from ``R``
  sequential rounds of ``W`` fully-overlapping commutative inserts followed
  by an unsatisfiable observer (``lookup`` of a never-inserted key returning
  ``True``).  Every linearization order fails only at the very end, so the
  unmemoized search explores ~``(W!)**R`` orderings while the memoized
  search collapses each round's orders into its ~``2**W`` reachable
  multiset states.  The gate requires memoization to cut nodes visited on
  the **longest** adversarial history by >= ``MIN_MEMO_RATIO``x.

Writes a machine-readable ``BENCH_linz.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_linz.py
    PYTHONPATH=src python benchmarks/bench_linz.py --smoke  # CI subset
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.core.actions import CallAction, ReturnAction
from repro.core.log import Log
from repro.harness import run_program
from repro.linz import LinzChecker, linz_config
from repro.multiset.spec import SUCCESS

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_linz.json")

MIN_MEMO_RATIO = 5.0

# (program, threads, calls_per_thread, seed, in_smoke)
REGISTRY_CASES = [
    ("java-vector", 3, 4, 1, True),
    ("java-vector", 3, 8, 1, False),
    ("java-vector", 3, 12, 1, True),
    ("stringbuffer", 3, 8, 1, False),
    ("stringbuffer", 3, 12, 1, True),
    ("multiset-vector", 3, 8, 1, False),
    ("multiset-vector", 3, 12, 1, False),
]

# (overlap_width W, rounds R, in_smoke); ordered by history length so the
# last row is the gate's "longest history".
ADVERSARIAL_CASES = [
    (4, 1, True),
    (5, 1, False),
    (6, 1, False),
    (5, 2, True),
]


def adversarial_log(width: int, rounds: int) -> Log:
    """``rounds`` sequential rounds of ``width`` overlapping inserts, then
    an unsatisfiable ``lookup`` -- non-linearizable by construction."""
    log = Log()
    op_id = 0
    for r in range(rounds):
        ops = []
        for j in range(width):
            key = r * 1_000 + j  # distinct keys: inserts commute
            log.append(CallAction(tid=j, op_id=op_id, method="insert",
                                  args=(key,)))
            ops.append(op_id)
            op_id += 1
        for oid in ops:
            log.append(ReturnAction(tid=oid % width, op_id=oid,
                                    method="insert", result=SUCCESS))
    # a key no round ever inserted: no linearization point can explain True
    log.append(CallAction(tid=width, op_id=op_id, method="lookup",
                          args=(999_999,)))
    log.append(ReturnAction(tid=width, op_id=op_id, method="lookup",
                            result=True))
    return log


def check_both_ways(log, spec_factory, *, max_nodes):
    """Run the search memo-on and memo-off; return the two result dicts."""
    out = {}
    for memo in (True, False):
        checker = LinzChecker(spec_factory, memo=memo, max_nodes=max_nodes)
        start = time.perf_counter()
        outcome = checker.check(log)
        seconds = time.perf_counter() - start
        out[memo] = {
            "ok": outcome.ok,
            "nodes": outcome.stats["nodes"],
            "spec_clones": outcome.stats["spec_clones"],
            "memo_hits": outcome.stats["memo_hits"],
            "memo_entries": outcome.stats["memo_entries"],
            "max_depth": outcome.stats["max_depth"],
            "max_pending": outcome.stats["max_pending"],
            "seconds": round(seconds, 4),
        }
    return out


def registry_row(program, threads, calls, seed, *, max_nodes):
    result = run_program(program, num_threads=threads,
                         calls_per_thread=calls, seed=seed)
    spec_factory = linz_config(program).linz_spec_factory
    both = check_both_ways(result.log, spec_factory, max_nodes=max_nodes)
    return {
        "family": "registry",
        "program": program,
        "threads": threads,
        "calls_per_thread": calls,
        "seed": seed,
        "operations": threads * calls,
        "memo_on": both[True],
        "memo_off": both[False],
        "verdicts_agree": both[True]["ok"] == both[False]["ok"],
        "linearizable": both[True]["ok"],
    }


def adversarial_row(width, rounds, *, max_nodes):
    log = adversarial_log(width, rounds)
    spec_factory = linz_config("multiset-vector").linz_spec_factory
    both = check_both_ways(log, spec_factory, max_nodes=max_nodes)
    ratio = both[False]["nodes"] / max(1, both[True]["nodes"])
    return {
        "family": "adversarial",
        "overlap_width": width,
        "rounds": rounds,
        "operations": width * rounds + 1,
        "memo_on": both[True],
        "memo_off": both[False],
        "verdicts_agree": both[True]["ok"] == both[False]["ok"],
        "linearizable": both[True]["ok"],
        "memo_ratio": round(ratio, 1),
    }


def render(report: dict) -> str:
    lines = [
        "linearizability search: cost vs history length, memoization ablation "
        f"(gate: >= {MIN_MEMO_RATIO:.0f}x fewer nodes on the longest "
        "adversarial history)",
        f"{'case':<34} {'ops':>4} {'ok':>5} {'on':>8} {'off':>9} "
        f"{'ratio':>7} {'s(on)':>7} {'s(off)':>7}",
    ]
    for row in report["rows"]:
        if row["family"] == "registry":
            case = (f"{row['program']} t={row['threads']} "
                    f"c={row['calls_per_thread']}")
            ratio = ""
        else:
            case = (f"adversarial W={row['overlap_width']} "
                    f"R={row['rounds']}")
            ratio = f"{row['memo_ratio']:.1f}x"
        lines.append(
            f"{case:<34} {row['operations']:>4} "
            f"{str(row['linearizable']):>5} {row['memo_on']['nodes']:>8} "
            f"{row['memo_off']['nodes']:>9} {ratio:>7} "
            f"{row['memo_on']['seconds']:>7.3f} "
            f"{row['memo_off']['seconds']:>7.3f}"
        )
    gate = report["gate"]
    lines.append(
        f"longest adversarial history: {gate['operations']} ops, "
        f"memo ratio {gate['memo_ratio']:.1f}x "
        f"(need >= {MIN_MEMO_RATIO:.0f}x) -> "
        f"{'OK' if report['gate_ok'] else 'FAIL'}"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--max-nodes", type=int, default=2_000_000,
                        help="per-search node budget")
    parser.add_argument("--smoke", action="store_true",
                        help="CI subset: fastest rows of each family")
    parser.add_argument("--out", default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    rows = []
    for program, threads, calls, seed, in_smoke in REGISTRY_CASES:
        if args.smoke and not in_smoke:
            continue
        rows.append(registry_row(program, threads, calls, seed,
                                 max_nodes=args.max_nodes))
    adversarial = []
    for width, rounds, in_smoke in ADVERSARIAL_CASES:
        if args.smoke and not in_smoke:
            continue
        row = adversarial_row(width, rounds, max_nodes=args.max_nodes)
        adversarial.append(row)
        rows.append(row)

    # The gate row: the longest adversarial history actually run.
    gate = max(adversarial, key=lambda row: row["operations"])
    report = {
        "benchmark": "linz",
        "min_memo_ratio": MIN_MEMO_RATIO,
        "max_nodes": args.max_nodes,
        "smoke": args.smoke,
        "verdicts_agree": all(row["verdicts_agree"] for row in rows),
        "gate": {
            "overlap_width": gate["overlap_width"],
            "rounds": gate["rounds"],
            "operations": gate["operations"],
            "memo_ratio": gate["memo_ratio"],
        },
        "gate_ok": (
            gate["memo_ratio"] >= MIN_MEMO_RATIO
            and all(row["verdicts_agree"] for row in rows)
        ),
        "rows": rows,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(render(report))
    print(f"report written to {args.out}")
    return 0 if report["gate_ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
