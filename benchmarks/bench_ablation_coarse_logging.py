"""Ablation -- logging granularity: fine-grained writes vs coarse entries.

Paper section 6.2 offers two logging levels: fine-grained (every shared
write, no data-structure knowledge needed for replay) and coarse-grained
(groups the programmer can show atomic become a single entry with a custom
replay routine, "which reduces logging contention and overhead").

This ablation runs the identical StringBuffer workload twice -- once with
per-character write logging, once with one ``ReplayAction`` per mutator
group -- and compares log sizes, logging time and view-checking time.  Both
modes must reach the same verdict.
"""

import time

import pytest

from repro import Kernel, Vyrd
from repro.harness import render_table
from repro.javalib import (
    StringBufferSpec,
    StringBufferSystem,
    stringbuffer_replay_registry,
    stringbuffer_view,
)

from _common import emit, fmt_secs

_rows = []


def _run(seed: int, coarse: bool, rounds: int):
    import random

    vyrd = Vyrd(
        spec_factory=lambda: StringBufferSpec(capacity=96),
        mode="view",
        impl_view_factory=stringbuffer_view,
        replay_registry=stringbuffer_replay_registry() if coarse else None,
    )
    kernel = Kernel(seed=seed, tracer=vyrd.tracer)
    system = StringBufferSystem(capacity=96, coarse_logging=coarse)
    vds = vyrd.wrap(system)

    def appender(ctx):
        for _ in range(rounds):
            yield from vds.append_buffer(ctx, "dst", "src")
            yield from vds.delete(ctx, "dst", 0, 6)

    def churner(ctx, rng):
        for _ in range(rounds):
            yield from vds.append_str(ctx, "src", "abcdef")
            yield from vds.delete(ctx, "src", 0, rng.randrange(2, 6))

    def observer_thread(ctx):
        for _ in range(rounds):
            yield from vds.to_string(ctx, "dst")

    kernel.spawn(appender)
    kernel.spawn(churner, random.Random(seed))
    kernel.spawn(churner, random.Random(seed + 5))
    kernel.spawn(observer_thread)
    start = time.process_time()
    kernel.run()
    run_cpu = time.process_time() - start
    start = time.process_time()
    outcome = vyrd.check_offline()
    check_cpu = time.process_time() - start
    assert outcome.ok, str(outcome.first_violation)
    return len(vyrd.log), run_cpu, check_cpu


def _measure(rounds: int):
    fine = coarse = (0, 0.0, 0.0)
    fine_totals = [0, 0.0, 0.0]
    coarse_totals = [0, 0.0, 0.0]
    for seed in range(3):
        for totals, is_coarse in ((fine_totals, False), (coarse_totals, True)):
            records, run_cpu, check_cpu = _run(seed, is_coarse, rounds)
            totals[0] += records
            totals[1] += run_cpu
            totals[2] += check_cpu
    row = (rounds, tuple(fine_totals), tuple(coarse_totals))
    _rows.append(row)
    return row


@pytest.mark.parametrize("rounds", [10, 25], ids=["short", "long"])
def test_coarse_logging_shrinks_log(benchmark, rounds):
    row = benchmark.pedantic(_measure, args=(rounds,), rounds=1, iterations=1)
    _, fine, coarse = row
    assert coarse[0] < fine[0] / 1.5, "coarse log should be much smaller"


def _render() -> str:
    rows = []
    for rounds, fine, coarse in _rows:
        rows.append([
            f"{rounds} rounds",
            fine[0], fmt_secs(fine[1]), fmt_secs(fine[2]),
            coarse[0], fmt_secs(coarse[1]), fmt_secs(coarse[2]),
            f"{fine[0] / coarse[0]:.1f}x",
        ])
    return render_table(
        "Ablation: fine vs coarse logging granularity (StringBuffer, 3 seeds)",
        ["workload", "fine records", "fine run (s)", "fine check (s)",
         "coarse records", "coarse run (s)", "coarse check (s)",
         "log shrink"],
        rows,
    )


@pytest.fixture(scope="module", autouse=True)
def _emit_table():
    yield
    if _rows:
        emit("ablation_coarse_logging", _render())


def main() -> None:
    for rounds in (10, 25):
        _measure(rounds)
    emit("ablation_coarse_logging", _render())


if __name__ == "__main__":
    main()
