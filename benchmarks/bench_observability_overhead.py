"""Observability overhead: the disabled recorder must be (near-)free.

The :mod:`repro.obs` layer guards every hot site (kernel step dispatch,
tracer append, checker feed/commit/view refresh) on ``recorder.enabled``, so
a pipeline without observability pays one attribute load and branch per
site.  This benchmark quantifies that promise on Table 2-class workloads
(run + view-level logging + offline check) and writes a machine-readable
``benchmarks/results/BENCH_obs_overhead.json``:

* **off** -- the default :class:`~repro.obs.NullRecorder` pipeline (what
  every seed-equivalent run pays now that the guards exist);
* **counters** -- ``MetricsRecorder(max_events=0)``: counters/histograms
  only, the configuration the parallel explorer ships to workers;
* **full** -- ``MetricsRecorder()`` with span events retained for trace
  export.

The <= 5% gate for the disabled path cannot be measured as off-vs-seed (the
guards cannot be removed at runtime), so it is bounded from first
principles: a microbenchmark times the guard pattern itself, the enabled
run's own counters say how many guarded sites one run executes, and the
product bounds the disabled layer's share of the measured off-pipeline CPU
time.  The exit code is the gate: nonzero if the bound exceeds the budget.

Usage::

    PYTHONPATH=src python benchmarks/bench_observability_overhead.py
    PYTHONPATH=src python benchmarks/bench_observability_overhead.py --smoke

``--smoke`` shrinks the sweep to one program with a small workload for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.harness import run_program
from repro.obs import NULL_RECORDER, MetricsRecorder

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
DEFAULT_OUT = os.path.join(RESULTS_DIR, "BENCH_obs_overhead.json")

#: Disabled-recorder overhead budget (fraction of off-pipeline CPU time).
BUDGET = 0.05

FULL_CONFIG = [
    ("multiset-vector", 8, 60),
    ("stringbuffer", 8, 60),
    ("blinktree", 8, 60),
]
SMOKE_CONFIG = [
    ("multiset-vector", 4, 20),
]


def _pipeline_cpu(name: str, threads: int, calls: int, seed: int, obs) -> float:
    """CPU seconds for one full pipeline pass: run + offline view check."""
    start = time.process_time()
    result = run_program(
        name, num_threads=threads, calls_per_thread=calls, seed=seed, obs=obs,
    )
    result.vyrd.check_offline()
    return time.process_time() - start


def _guard_cost_seconds(iterations: int = 2_000_000) -> float:
    """Per-site cost of the disabled guard, measured on the real pattern."""
    obs = NULL_RECORDER
    start = time.process_time()
    for _ in range(iterations):
        if obs.enabled:  # pragma: no cover - never taken
            obs.count("x")
    elapsed = time.process_time() - start
    return elapsed / iterations


def _guarded_sites_per_run(name: str, threads: int, calls: int, seed: int) -> int:
    """How many guarded sites one run executes, from the enabled run's own
    counters: every count/observe/span call sits behind exactly one guard."""
    recorder = MetricsRecorder(max_events=0)
    result = run_program(
        name, num_threads=threads, calls_per_thread=calls, seed=seed,
        obs=recorder,
    )
    result.vyrd.check_offline()
    return (
        sum(recorder.counters.values())
        + sum(h.count for h in recorder.histograms.values())
    )


def run_bench(config, seeds, repeats: int) -> dict:
    guard_seconds = _guard_cost_seconds()
    rows = []
    for name, threads, calls in config:
        timings = {"off": [], "counters": [], "full": []}
        for seed in seeds:
            for _ in range(repeats):
                timings["off"].append(
                    _pipeline_cpu(name, threads, calls, seed, None)
                )
                timings["counters"].append(
                    _pipeline_cpu(name, threads, calls, seed,
                                  MetricsRecorder(max_events=0))
                )
                timings["full"].append(
                    _pipeline_cpu(name, threads, calls, seed,
                                  MetricsRecorder())
                )
        best = {key: min(values) for key, values in timings.items()}
        sites = _guarded_sites_per_run(name, threads, calls, seeds[0])
        null_bound = guard_seconds * sites / best["off"] if best["off"] else 0.0
        rows.append({
            "program": name,
            "threads": threads,
            "calls_per_thread": calls,
            "cpu_off": round(best["off"], 4),
            "cpu_counters": round(best["counters"], 4),
            "cpu_full": round(best["full"], 4),
            "counters_vs_off": round(best["counters"] / best["off"], 3),
            "full_vs_off": round(best["full"] / best["off"], 3),
            "guarded_sites_per_run": sites,
            "null_overhead_bound": round(null_bound, 5),
            "within_budget": null_bound <= BUDGET,
        })
    return {
        "benchmark": "observability_overhead",
        "budget": BUDGET,
        "guard_cost_ns": round(guard_seconds * 1e9, 2),
        "seeds": list(seeds),
        "repeats": repeats,
        "all_within_budget": all(row["within_budget"] for row in rows),
        "rows": rows,
    }


def render(report: dict) -> str:
    from repro.harness import render_table

    rows = [
        (
            row["program"],
            row["cpu_off"],
            row["cpu_counters"],
            row["cpu_full"],
            f"{row['full_vs_off']:.2f}x",
            f"{row['null_overhead_bound'] * 100:.3f}%",
        )
        for row in report["rows"]
    ]
    table = render_table(
        "observability overhead (best-of CPU s: off / counters / full)",
        ("program", "off", "counters", "full", "full/off", "null bound"),
        rows,
    )
    verdict = (
        f"disabled-recorder bound vs {report['budget'] * 100:.0f}% budget: "
        + ("OK" if report["all_within_budget"] else "EXCEEDED")
        + f" (guard cost {report['guard_cost_ns']} ns/site)"
    )
    return table + "\n" + verdict


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=2,
                        help="distinct workload seeds per program")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per seed (best is kept)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI sweep: one program, small workload")
    parser.add_argument("--out", default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    config = SMOKE_CONFIG if args.smoke else FULL_CONFIG
    repeats = 2 if args.smoke else args.repeats
    report = run_bench(config, seeds=list(range(args.seeds)), repeats=repeats)
    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(render(report))
    print(f"report written to {args.out}")
    return 0 if report["all_within_budget"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
