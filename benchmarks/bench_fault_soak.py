"""Fault soak: repeated seeded fault campaigns with recovery accounting.

Runs ``N`` complete fault-injection campaigns (:mod:`repro.faults`), each
with a fresh plan drawn from its soak index: worker crashes and hangs
against the multi-process explorer, torn/bit-flipped saved logs against
:func:`repro.core.log.recover_log`, latency injection against the kernel
tracer, and the self-healing serve rounds -- mid-session producer kills
absorbed by the supervisor, store brownouts absorbed by the retry layer,
checker crashes absorbed by degraded-mode catch-up.  Writes a
machine-readable ``BENCH_fault_soak.json`` at the repo root: per-campaign
signature verdicts, incidents survived (retries, pool rebuilds, watchdog
kills, producer restarts, store retries), salvage accounting for every
corruption, and the faulted/baseline overhead ratio.

The exit code is the robustness gate: nonzero if *any* campaign diverged
from its fault-free serial baseline, any corruption failed to salvage the
longest valid prefix, any serve round changed a verdict byte, or any
supervisor needed more than its bounded restart budget.

Usage::

    PYTHONPATH=src python benchmarks/bench_fault_soak.py
    PYTHONPATH=src python benchmarks/bench_fault_soak.py --smoke  # CI

``--smoke`` shrinks the soak to 2 campaigns with a tight watchdog so CI can
exercise the whole pipeline (injection, kill, retry, salvage, equality
check) in seconds.
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.faults import run_fault_campaign

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_fault_soak.json")


def run_soak(
    program: str,
    campaigns: int,
    base_seed: int,
    jobs: int,
    runs: int,
    threads: int,
    calls: int,
    timeout: float,
    retries: int,
) -> dict:
    rows = []
    for index in range(campaigns):
        seed = base_seed + index
        start = time.perf_counter()
        report = run_fault_campaign(
            program=program,
            seed=seed,
            jobs=jobs,
            num_runs=runs,
            num_threads=threads,
            calls_per_thread=calls,
            timeout=timeout,
            max_retries=retries,
        )
        seconds = time.perf_counter() - start
        recoveries = report.recoveries
        serve_checks = (
            report.producer_kill_checks
            + report.brownout_checks
            + report.catchup_checks
        )
        rows.append({
            "seed": seed,
            "ok": report.ok,
            "signatures_match": report.signatures_match,
            "recovery_ok": report.recovery_ok,
            "tracer_log_identical": report.tracer_log_identical,
            "producer_kill_ok": report.producer_kill_ok,
            "brownout_ok": report.brownout_ok,
            "catchup_ok": report.catchup_ok,
            "producer_restarts": sum(
                e["restarts"] for e in report.producer_kill_checks
            ),
            "restarts_bounded": all(
                1 <= e["restarts"] <= 2 and not e["gave_up"]
                for e in report.producer_kill_checks
            ),
            "store_retries_absorbed": sum(
                e["retries_absorbed"] for e in report.brownout_checks
            ),
            "store_giveups": sum(
                e["giveups"] for e in report.brownout_checks
            ),
            "catchup_records": sum(
                e["catchup_records"] or 0 for e in report.catchup_checks
            ),
            "serve_verdict_divergences": sum(
                1 for e in serve_checks
                if not (e["signature_identical"] and e["verdict_identical"])
            ),
            "seconds": round(seconds, 3),
            "overhead": (
                round(report.overhead, 3)
                if report.overhead is not None else None
            ),
            "incidents": report.incident_counts,
            "recoveries": [
                {
                    "kind": entry["fault"].get("kind"),
                    "salvaged": entry["salvaged_records"],
                    "total": entry["total_records"],
                    "error_offset": entry["error_offset"],
                    "ok": entry["ok"],
                }
                for entry in recoveries
            ],
        })
    incident_totals: dict = {}
    for row in rows:
        for kind, count in row["incidents"].items():
            incident_totals[kind] = incident_totals.get(kind, 0) + count
    overheads = [r["overhead"] for r in rows if r["overhead"] is not None]
    return {
        "benchmark": "fault_soak",
        "program": program,
        "campaigns": campaigns,
        "base_seed": base_seed,
        "jobs": jobs,
        "runs_per_campaign": runs,
        "threads": threads,
        "calls_per_thread": calls,
        "watchdog_timeout": timeout,
        "max_retries": retries,
        "cpu_count": os.cpu_count(),
        "all_ok": all(r["ok"] for r in rows),
        "campaigns_diverged": sum(1 for r in rows if not r["signatures_match"]),
        "recoveries_failed": sum(
            1 for r in rows for entry in r["recoveries"] if not entry["ok"]
        ),
        "serve_verdict_divergences": sum(
            r["serve_verdict_divergences"] for r in rows
        ),
        "producer_restarts_total": sum(r["producer_restarts"] for r in rows),
        "restarts_bounded": all(r["restarts_bounded"] for r in rows),
        "store_retries_total": sum(r["store_retries_absorbed"] for r in rows),
        "store_giveups_total": sum(r["store_giveups"] for r in rows),
        "incident_totals": incident_totals,
        "mean_overhead": (
            round(sum(overheads) / len(overheads), 3) if overheads else None
        ),
        "rows": rows,
    }


def render(report: dict) -> str:
    lines = [
        f"fault soak: {report['program']} x{report['campaigns']} campaigns "
        f"({report['runs_per_campaign']} schedules each, jobs="
        f"{report['jobs']}, watchdog {report['watchdog_timeout']}s)",
        f"{'seed':>5}  {'ok':>5}  {'seconds':>8}  {'overhead':>8}  "
        f"incidents / recoveries",
    ]
    for row in report["rows"]:
        incidents = ",".join(
            f"{k}={v}" for k, v in sorted(row["incidents"].items())
        ) or "none"
        salvage = ",".join(
            f"{r['kind']}:{r['salvaged']}/{r['total']}"
            for r in row["recoveries"]
        )
        lines.append(
            f"{row['seed']:>5}  {str(row['ok']):>5}  {row['seconds']:>8.3f}  "
            f"{str(row['overhead']):>8}  {incidents} / {salvage}"
        )
    totals = ", ".join(
        f"{k}={v}" for k, v in sorted(report["incident_totals"].items())
    ) or "none"
    lines.append(
        f"totals: incidents {totals}; {report['campaigns_diverged']} "
        f"diverged, {report['recoveries_failed']} failed recoveries, mean "
        f"overhead {report['mean_overhead']}x"
    )
    lines.append(
        f"serve: {report['serve_verdict_divergences']} verdict divergences, "
        f"{report['producer_restarts_total']} producer restarts "
        f"({'bounded' if report['restarts_bounded'] else 'UNBOUNDED'}), "
        f"{report['store_retries_total']} store retries absorbed "
        f"({report['store_giveups_total']} giveups)"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--program", default="multiset-vector")
    parser.add_argument("--campaigns", type=int, default=8)
    parser.add_argument("--base-seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--runs", type=int, default=12,
                        help="schedules explored per campaign")
    parser.add_argument("--threads", type=int, default=2)
    parser.add_argument("--calls", type=int, default=3)
    parser.add_argument("--timeout", type=float, default=5.0,
                        help="per-task watchdog deadline (seconds)")
    parser.add_argument("--retries", type=int, default=2)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI soak: 2 campaigns, tight watchdog")
    parser.add_argument("--out", default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    if args.smoke:
        args.campaigns = 2
        args.timeout = 2.0
    report = run_soak(
        args.program, args.campaigns, args.base_seed, args.jobs, args.runs,
        args.threads, args.calls, args.timeout, args.retries,
    )
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(render(report))
    print(f"report written to {args.out}")
    return 0 if report["all_ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
