"""Figure 6 -- Refinement violations in the buggy version of multiset.

The paper's Fig. 6: thread T2's buggy FindSlot overwrites the value 5 that
thread T1 reserved in A[0]; after both InsertPairs commit, the spec state is
{5,6,7,8} while the implementation lost the 5.  A subsequent LookUp(5)
returns false -- an I/O refinement violation -- and the view comparison at
the later commit detects the loss immediately.

This benchmark hunts the overwrite schedule, renders the violation trace,
and checks both detection routes (view at the commit; observer at the
lookup)."""

from repro import Kernel, ViolationKind, Vyrd, format_outcome, render_trace
from repro.multiset import MultisetSpec, VectorMultiset, multiset_view

from _common import emit


def _run(seed: int):
    vyrd = Vyrd(spec_factory=MultisetSpec, mode="view",
                impl_view_factory=multiset_view, log_level="view")
    kernel = Kernel(seed=seed, tracer=vyrd.tracer)
    multiset = VectorMultiset(size=8, buggy_findslot=True)
    vds = vyrd.wrap(multiset)

    def t1(ctx):
        yield from vds.insert_pair(ctx, 5, 6)
        yield from vds.lookup(ctx, 5)

    def t2(ctx):
        yield from vds.insert_pair(ctx, 7, 8)

    def auditor(ctx):
        for key in (5, 6, 7, 8):
            yield from vds.lookup(ctx, key)

    kernel.spawn(t1, name="T1")
    kernel.spawn(t2, name="T2")
    kernel.spawn(auditor, name="audit")
    kernel.run()
    return vyrd


def _find_and_render():
    for seed in range(500):
        vyrd = _run(seed)
        view_outcome = vyrd.check_offline_with_mode("view")
        io_outcome = vyrd.check_offline_with_mode("io")
        if not view_outcome.ok and not io_outcome.ok:
            assert view_outcome.first_violation.kind in (
                ViolationKind.VIEW, ViolationKind.OBSERVER
            )
            assert io_outcome.first_violation.kind is ViolationKind.OBSERVER
            assert (
                view_outcome.detection_method_count
                <= io_outcome.detection_method_count
            )
            text = "\n".join([
                f"Figure 6 reproduction (seed {seed}): buggy FindSlot lets T2 "
                "overwrite T1's reserved slot.",
                "",
                render_trace(vyrd.log, max_rows=40),
                "",
                format_outcome(view_outcome, title="view refinement"),
                "",
                format_outcome(io_outcome, title="I/O refinement"),
            ])
            return text
    raise AssertionError("Fig. 6 violation not found in 500 seeds")


def test_fig6_violation_detected_both_modes(benchmark):
    text = benchmark.pedantic(_find_and_render, rounds=1, iterations=1)
    assert "FAIL" in text
    emit("fig6_violation_trace", text)


def main() -> None:
    emit("fig6_violation_trace", _find_and_render())


if __name__ == "__main__":
    main()
