#!/usr/bin/env python3
"""Bounded exhaustive refinement verification (extension to the paper).

The paper deliberately checks one interleaving per run ("we have chosen to
investigate runtime checking and sacrifice completeness").  On this
reproduction's deterministic simulator, small programs can close that gap:
`verify_all_schedules` enumerates *every* schedule and runs the full view
refinement check on each one.

This script verifies a 2-thread multiset program across its entire schedule
space (correct variant: all schedules refine), then does the same for the
buggy FindSlot variant and reports exactly how many schedules violate --
with a deterministic replay of the first counterexample.

Run:  python examples/exhaustive_verification.py
"""

from repro import Kernel, Vyrd
from repro.core import replay_schedule, verify_all_schedules
from repro.multiset import MultisetSpec, VectorMultiset, multiset_view


def make_run_factory(buggy: bool):
    def make_run(scheduler):
        vyrd = Vyrd(
            spec_factory=MultisetSpec,
            mode="view",
            impl_view_factory=multiset_view,
        )
        kernel = Kernel(scheduler=scheduler, tracer=vyrd.tracer)
        multiset = VectorMultiset(size=4, buggy_findslot=buggy)
        vds = vyrd.wrap(multiset)

        def inserter(ctx, value):
            yield from vds.insert(ctx, value)

        kernel.spawn(inserter, "a")
        kernel.spawn(inserter, "b")
        kernel.run()
        return vyrd

    return make_run


def main() -> None:
    print("Two threads, insert('a') || insert('b'), every schedule checked.\n")

    print("Correct FindSlot:")
    result = verify_all_schedules(make_run_factory(False), max_runs=50_000)
    print(f"  {result.summary()}")
    assert result.exhausted and result.all_ok

    print("\nBuggy FindSlot (Fig. 5):")
    result = verify_all_schedules(make_run_factory(True), max_runs=50_000)
    print(f"  {result.summary()}")
    violating = len(result.violations)
    total = result.schedules_run
    print(f"  {violating}/{total} schedules violate refinement "
          f"({violating / total:.1%} of the space)")

    schedule = result.violations[0].schedule
    print(f"\nDeterministically replaying counterexample {schedule}:")
    _, outcome = replay_schedule(make_run_factory(True), schedule)
    print(f"  {outcome.summary()}")


if __name__ == "__main__":
    main()
