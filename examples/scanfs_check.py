#!/usr/bin/env python3
"""Checking the Scan-like file system (paper section 7.3).

A small write-back file system -- block device, block cache, flat directory
-- verified against a name->content map spec.  The seeded bug is the same
class VYRD found in the real Scan and Boxwood caches: an unprotected update
of a dirty cached block that a concurrent flush can tear.

Run:  python examples/scanfs_check.py
"""

import random

from repro import Kernel, Vyrd
from repro.scanfs import BlockCache, BlockDevice, FsSpec, ScanFS, scanfs_view

BLOCKS, BLOCK_SIZE = 12, 8


def run_fs(seed: int, buggy: bool):
    device = BlockDevice(num_blocks=BLOCKS, block_size=BLOCK_SIZE)
    cache = BlockCache(device, buggy_dirty_update=buggy)
    fs = ScanFS(cache)
    vyrd = Vyrd(
        spec_factory=lambda: FsSpec(num_blocks=BLOCKS, max_content=BLOCK_SIZE - 1),
        mode="view",
        impl_view_factory=lambda: scanfs_view(BLOCKS, BLOCK_SIZE),
    )
    kernel = Kernel(seed=seed, tracer=vyrd.tracer)
    vfs = vyrd.wrap(fs)
    names = ["log", "db", "tmp"]

    def worker(ctx, rng):
        for _ in range(15):
            op = rng.choice(("create", "write", "write", "write", "read", "delete"))
            name = rng.choice(names)
            if op == "create":
                yield from vfs.create(ctx, name)
            elif op == "write":
                content = tuple(rng.randrange(256) for _ in range(rng.randrange(BLOCK_SIZE - 1)))
                yield from vfs.write_file(ctx, name, content)
            elif op == "read":
                yield from vfs.read_file(ctx, name)
            else:
                yield from vfs.delete(ctx, name)

    for i in range(4):
        kernel.spawn(worker, random.Random(seed * 13 + i), name=f"app-{i}")
    kernel.spawn(cache.flush_thread, daemon=True, name="flush-daemon")
    kernel.run()
    return fs, vyrd.check_offline()


def main() -> None:
    print("Correct file system under concurrent churn + flush daemon:")
    for seed in range(6):
        fs, outcome = run_fs(seed, buggy=False)
        print(f"  seed {seed}: {outcome.summary()}")
        assert outcome.ok
    print(f"\n  final files of last run: {fs.files()!r}")

    print("\nBuggy block cache (torn write-back), hunting across seeds:")
    for seed in range(300):
        fs, outcome = run_fs(seed, buggy=True)
        if not outcome.ok:
            print(f"  seed {seed}: detected after {outcome.detection_method_count} methods")
            print(f"  {outcome.first_violation}")
            break
    else:
        print("  not triggered in 300 seeds (the race window is narrow)")


if __name__ == "__main__":
    main()
