#!/usr/bin/env python3
"""Using an atomized implementation as the specification (paper section 4.4).

When no separate executable specification exists, VYRD can check the
concurrent implementation against *its own code run atomically*: one method
at a time, to completion.  Return-value mismatches caused purely by
concurrency (e.g. an ``insert_pair`` failing under contention) are
reconciled through the declared ``no_op_results`` -- the state rolls back,
just like Fig. 1's spec leaves ``M`` unchanged on ``failure``.

Run:  python examples/atomized_spec.py
"""

from repro import AtomizedSpec, Kernel, Vyrd
from repro.multiset import FAILURE, VectorMultiset, multiset_view


def atomized_spec_factory():
    """A fresh atomized multiset serving as the specification."""
    return AtomizedSpec(
        VectorMultiset(size=8),
        no_op_results=frozenset({FAILURE}),
    )


def run(seed: int, buggy: bool):
    vyrd = Vyrd(
        spec_factory=atomized_spec_factory,
        mode="view",
        impl_view_factory=multiset_view,
    )
    kernel = Kernel(seed=seed, tracer=vyrd.tracer)
    multiset = VectorMultiset(size=8, buggy_findslot=buggy)
    vds = vyrd.wrap(multiset)

    def worker(ctx, x, y):
        yield from vds.insert_pair(ctx, x, y)
        yield from vds.lookup(ctx, x)

    kernel.spawn(worker, 5, 6)
    kernel.spawn(worker, 7, 8)
    kernel.run()
    return vyrd.check_offline()


def main() -> None:
    print("Checking the concurrent multiset against its own atomized code.")
    print("\nCorrect implementation, 5 seeds:")
    for seed in range(5):
        outcome = run(seed, buggy=False)
        print(f"  seed {seed}: {outcome.summary()}")
        assert outcome.ok

    print("\nBuggy FindSlot against the atomized spec:")
    for seed in range(100):
        outcome = run(seed, buggy=True)
        if not outcome.ok:
            print(f"  seed {seed}: {outcome.first_violation}")
            print(
                "  the atomized interpretation provides the witness states "
                "without any hand-written spec."
            )
            break
    else:
        print("  not triggered in 100 seeds")


if __name__ == "__main__":
    main()
