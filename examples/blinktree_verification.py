#!/usr/bin/env python3
"""Verifying the B-link tree under churn, splits and compression.

Reproduces the section 7.2.3-7.2.5 setup: many application threads hammer a
B-link tree with inserts/deletes/lookups while the compression thread purges
tombstones; an *online* VYRD verification thread consumes the log as the run
proceeds.  Then the "allowing duplicated data nodes" bug of Table 1 is
switched on and hunted down.

Run:  python examples/blinktree_verification.py
"""

import random

from repro import Kernel, Vyrd
from repro.boxwood import BLinkTree, BLinkTreeSpec, blinktree_view


def run_tree(seed: int, buggy: bool, threads: int = 6, calls: int = 40):
    vyrd = Vyrd(
        spec_factory=BLinkTreeSpec,
        mode="view",
        impl_view_factory=blinktree_view,
    )
    kernel = Kernel(seed=seed, tracer=vyrd.tracer)
    tree = BLinkTree(order=4, buggy_duplicates=buggy)
    vtree = vyrd.wrap(tree)
    verifier = vyrd.start_online(kernel)

    def worker(ctx, rng, index):
        for i in range(calls):
            op = rng.choice(("insert", "insert", "insert", "delete", "lookup"))
            key = rng.randrange(threads * 6)
            if op == "insert":
                yield from vtree.insert(ctx, key, (index, i))
            elif op == "delete":
                yield from vtree.delete(ctx, key)
            else:
                yield from vtree.lookup(ctx, key)

    for i in range(threads):
        kernel.spawn(worker, random.Random(seed * 31 + i), i, name=f"app-{i}")
    kernel.spawn(tree.compression_thread, daemon=True, name="compression")
    kernel.run()
    return tree, vyrd, verifier.finalize()


def main() -> None:
    print("Correct B-link tree, online verification, 5 seeds:")
    for seed in range(5):
        tree, vyrd, outcome = run_tree(seed, buggy=False)
        problems = tree.check_structure()
        print(
            f"  seed {seed}: {outcome.summary()}; "
            f"{len(vyrd.log)} log records; "
            f"structure {'OK' if not problems else problems}"
        )
        assert outcome.ok and not problems

    print("\nFinal tree contents of the last run (key -> (data, version)):")
    contents = tree.contents()
    for key in sorted(contents)[:10]:
        print(f"  {key:4d} -> {contents[key]}")
    if len(contents) > 10:
        print(f"  ... and {len(contents) - 10} more keys")

    print("\nBuggy variant (duplicated data nodes):")
    for seed in range(60):
        tree, vyrd, outcome = run_tree(seed, buggy=True)
        if not outcome.ok:
            violation = outcome.first_violation
            print(f"  seed {seed}: detected after {outcome.detection_method_count} methods")
            print(f"  {violation}")
            diff = violation.details.get("diff", {})
            for kind, entries in diff.items():
                if entries:
                    print(f"    {kind}: {entries!r}")
            break
    else:
        print("  not triggered in 60 seeds (rare race -- rerun)")


if __name__ == "__main__":
    main()
