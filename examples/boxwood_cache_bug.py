#!/usr/bin/env python3
"""Reproducing the real Boxwood Cache bug VYRD found (paper section 7.2.2).

The bug: in ``WRITE``'s dirty-entry branch, ``COPY-TO-CACHE`` runs without
``LOCK(clean)`` (Fig. 8 line 23).  A concurrent ``FLUSH`` can write a
half-copied byte array to the Chunk Manager and mark the entry clean --
violating cache invariant (i): *a clean entry's bytes equal the chunk's*.

This script shows the paper's central claim about early detection:

* **view refinement + runtime invariants** flag the corruption at the commit
  action where it happens;
* **I/O refinement** only notices once some ``read`` returns corrupt data --
  typically after eviction brings the bad bytes back -- many methods later,
  or never within the run.

Run:  python examples/boxwood_cache_bug.py
"""

import random

from repro import Kernel, Vyrd
from repro.boxwood import BoxwoodCache, ChunkManager, StoreSpec, cache_invariants, cache_view

BLOCK = 8


def run_workload(seed: int, buggy: bool) -> Vyrd:
    vyrd = Vyrd(
        spec_factory=StoreSpec,
        mode="view",
        impl_view_factory=lambda: cache_view(BLOCK),
        invariants=cache_invariants(BLOCK),
        log_level="view",
    )
    kernel = Kernel(seed=seed, tracer=vyrd.tracer)
    chunks = ChunkManager()
    cache = BoxwoodCache(chunks, block_size=BLOCK, buggy_dirty_write=buggy)
    vcache = vyrd.wrap(cache)
    handle = chunks.allocate()

    def writer(ctx, rng):
        for _ in range(10):
            buffer = tuple(rng.randrange(256) for _ in range(BLOCK))
            yield from vcache.write(ctx, handle, buffer)

    def maintenance(ctx, rng):
        for _ in range(10):
            yield from vcache.flush(ctx)
            if rng.random() < 0.4:
                yield from vcache.evict(ctx, handle)
            yield from vcache.read(ctx, handle)

    kernel.spawn(writer, random.Random(seed), name="writer-1")
    kernel.spawn(writer, random.Random(seed + 99), name="writer-2")
    kernel.spawn(maintenance, random.Random(seed + 7), name="flusher")
    kernel.run()
    return vyrd


def main() -> None:
    print("Correct cache: 10 seeds, view refinement + invariants (i)/(ii)")
    for seed in range(10):
        outcome = run_workload(seed, buggy=False).check_offline()
        assert outcome.ok, outcome.first_violation
    print("  all clean.\n")

    print("Buggy cache (unprotected COPY-TO-CACHE on a dirty entry):")
    print(f"{'seed':>6} {'view/invariant detection':>28} {'I/O detection':>16}")
    shown = 0
    for seed in range(60):
        vyrd = run_workload(seed, buggy=True)
        view_outcome = vyrd.check_offline_with_mode("view")
        io_outcome = vyrd.check_offline_with_mode("io")
        if view_outcome.ok and io_outcome.ok:
            continue
        view_at = (
            f"after {view_outcome.detection_method_count} methods"
            if not view_outcome.ok
            else "not detected"
        )
        io_at = (
            f"after {io_outcome.detection_method_count}"
            if not io_outcome.ok
            else "not detected"
        )
        print(f"{seed:>6} {view_at:>28} {io_at:>16}")
        if not view_outcome.ok and shown == 0:
            shown += 1
            violation = view_outcome.first_violation
            print(f"\n  first violation detail: {violation}")
            for key, value in violation.details.items():
                print(f"    {key}: {value!r}")
            print()
    print("\nNote how the invariant/view check fires within a handful of")
    print("methods of the corrupting commit, while I/O refinement needs the")
    print("corruption to round-trip through the Chunk Manager first.")


if __name__ == "__main__":
    main()
