#!/usr/bin/env python3
"""Why refinement, not atomicity? (paper sections 1, 2.1 and 8)

The paper's core argument: atomicity -- every method execution reducible to
a serial execution of the implementation itself -- is *too strict* for real
concurrent data structures.  Two canonical witnesses:

1. ``InsertPair`` reserves two slots in two separate critical sections and
   publishes them in a third (the commit block).  Reduction fails (a lock
   acquire follows a release -- section 8's ``W(p) W(q)`` pattern), yet the
   method refines the multiset spec perfectly.
2. A method may return ``failure`` purely because of contention.  No serial
   execution of the implementation ever fails, so atomicity rejects such
   runs; a spec that allows ``failure`` (Fig. 1) accepts them.

This script runs both experiments with the Atomizer-style baseline from
:mod:`repro.atomicity` next to the refinement checker.

Run:  python examples/atomicity_vs_refinement.py
"""

from repro import Kernel, Vyrd
from repro.atomicity import check_atomicity
from repro.multiset import FAILURE, MultisetSpec, VectorMultiset, multiset_view


def run_insert_pair(seed: int):
    vyrd = Vyrd(
        spec_factory=MultisetSpec, mode="view", impl_view_factory=multiset_view,
        log_locks=True, log_reads=True,
    )
    kernel = Kernel(seed=seed, tracer=vyrd.tracer)
    multiset = VectorMultiset(size=8)
    vds = vyrd.wrap(multiset)

    def worker(ctx, x, y):
        yield from vds.insert_pair(ctx, x, y)

    kernel.spawn(worker, 1, 2)
    kernel.spawn(worker, 3, 4)
    kernel.run()
    return vyrd


def run_contention_failure(seed: int):
    """A tiny array forces some InsertPair to fail under contention."""
    vyrd = Vyrd(
        spec_factory=MultisetSpec, mode="view", impl_view_factory=multiset_view,
        log_locks=True, log_reads=True,
    )
    kernel = Kernel(seed=seed, tracer=vyrd.tracer)
    multiset = VectorMultiset(size=3)
    vds = vyrd.wrap(multiset)
    results = []

    def worker(ctx, x, y):
        results.append((yield from vds.insert_pair(ctx, x, y)))

    kernel.spawn(worker, 1, 2)
    kernel.spawn(worker, 3, 4)
    kernel.run()
    return vyrd, results


def main() -> None:
    print("1. InsertPair: two reservation critical sections + a commit block")
    print("-" * 68)
    vyrd = run_insert_pair(seed=2)
    refinement = vyrd.check_offline()
    atomicity = check_atomicity(vyrd.log)
    print(f"   refinement: {refinement.summary()}")
    print(f"   atomicity:  {atomicity.summary()}")
    print(f"   first reduction failure: {atomicity.violations[0]}")
    assert refinement.ok and not atomicity.ok

    print()
    print("2. Exceptional termination under contention (Fig. 1's failure)")
    print("-" * 68)
    for seed in range(200):
        vyrd, results = run_contention_failure(seed)
        if FAILURE in results:
            refinement = vyrd.check_offline()
            print(f"   seed {seed}: results = {results}")
            print(f"   refinement: {refinement.summary()}")
            print(
                "   The spec allows 'failure' with M unchanged, so refinement "
                "accepts an execution\n   no atomic (serial) run of the "
                "implementation could ever produce."
            )
            assert refinement.ok
            break
    else:
        print("   contention failure not triggered in 200 seeds")


if __name__ == "__main__":
    main()
