#!/usr/bin/env python3
"""The two known Java class-library bugs (paper section 7.4.1).

* ``java.util.Vector.lastIndexOf(Object)`` reads ``elementCount`` outside
  synchronization -- an *observer* bug: state never corrupts, so view
  refinement has no edge over I/O refinement (the paper's Table 1 footnote).
* ``StringBuffer.append(StringBuffer)`` copies from the source without
  holding its monitor across length+copy -- a *state-corrupting* bug: view
  refinement flags it at the corrupting commit.

Run:  python examples/javalib_bugs.py
"""

import random

from repro import Kernel, Vyrd
from repro.javalib import (
    IOOBE,
    JavaVector,
    StringBufferSpec,
    StringBufferSystem,
    VectorSpec,
    stringbuffer_view,
    vector_view,
)


def run_vector(seed: int) -> Vyrd:
    vyrd = Vyrd(spec_factory=lambda: VectorSpec(capacity=32), mode="view",
                impl_view_factory=vector_view, log_level="view")
    kernel = Kernel(seed=seed, tracer=vyrd.tracer)
    vector = JavaVector(capacity=32, buggy_last_index_of=True)
    vds = vyrd.wrap(vector)

    def mutator_thread(ctx):
        for _ in range(8):
            yield from vds.add_element(ctx, "x")
            yield from vds.remove_all_elements(ctx)

    def reader_thread(ctx):
        for _ in range(10):
            yield from vds.last_index_of(ctx, "x")

    kernel.spawn(mutator_thread)
    kernel.spawn(reader_thread)
    kernel.run()
    return vyrd


def run_stringbuffer(seed: int) -> Vyrd:
    vyrd = Vyrd(spec_factory=lambda: StringBufferSpec(capacity=96), mode="view",
                impl_view_factory=stringbuffer_view, log_level="view")
    kernel = Kernel(seed=seed, tracer=vyrd.tracer)
    system = StringBufferSystem(capacity=96, buggy_append=True)
    vds = vyrd.wrap(system)

    def appender(ctx):
        for _ in range(6):
            yield from vds.append_buffer(ctx, "dst", "src")

    def shrinker(ctx, rng):
        for _ in range(8):
            yield from vds.append_str(ctx, "src", "abcd")
            yield from vds.delete(ctx, "src", 0, rng.randrange(1, 4))

    def auditor(ctx):
        for _ in range(8):
            yield from vds.to_string(ctx, "dst")

    kernel.spawn(appender)
    kernel.spawn(shrinker, random.Random(seed))
    kernel.spawn(auditor)
    kernel.run()
    return vyrd


def main() -> None:
    print("java.util.Vector: taking length non-atomically in lastIndexOf()")
    for seed in range(60):
        vyrd = run_vector(seed)
        io_outcome = vyrd.check_offline_with_mode("io")
        view_outcome = vyrd.check_offline_with_mode("view")
        if not io_outcome.ok:
            violation = io_outcome.first_violation
            print(f"  seed {seed}: {violation}")
            assert violation.signature.result == IOOBE or violation.signature.result >= -1
            print(
                "  observer bug: view detected after "
                f"{view_outcome.detection_method_count} methods, "
                f"I/O after {io_outcome.detection_method_count} -- identical, "
                "as Table 1 reports."
            )
            break
    print()
    print("StringBuffer: copying from an unprotected StringBuffer")
    for seed in range(60):
        vyrd = run_stringbuffer(seed)
        view_outcome = vyrd.check_offline_with_mode("view")
        io_outcome = vyrd.check_offline_with_mode("io")
        if not view_outcome.ok:
            print(f"  seed {seed}: {view_outcome.first_violation}")
            io_text = (
                f"after {io_outcome.detection_method_count} methods"
                if not io_outcome.ok else "never in this run"
            )
            print(
                "  state-corrupting bug: view detected after "
                f"{view_outcome.detection_method_count} methods, I/O {io_text}."
            )
            break


if __name__ == "__main__":
    main()
