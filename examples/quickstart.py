#!/usr/bin/env python3
"""Quickstart: runtime refinement checking of a concurrent multiset.

This walks the paper's running example (sections 2 and 5):

1. run a *correct* vector multiset under a seeded random scheduler and check
   both I/O and view refinement -- everything passes;
2. enable the buggy ``FindSlot`` of Fig. 5, race two ``InsertPair`` calls
   (the Fig. 6 scenario), and watch view refinement catch the lost element
   at the very commit action that exposes it;
3. print the per-thread trace and the witness interleaving so you can see
   how VYRD serialized the overlapping executions by commit order.

Run:  python examples/quickstart.py
"""

from repro import Kernel, Vyrd, format_outcome, render_trace, render_witness
from repro.multiset import MultisetSpec, VectorMultiset, multiset_view


def run_pair_race(seed: int, buggy: bool) -> tuple:
    """Two threads insert pairs concurrently; a third looks everything up."""
    vyrd = Vyrd(
        spec_factory=MultisetSpec,
        mode="view",
        impl_view_factory=multiset_view,
    )
    kernel = Kernel(seed=seed, tracer=vyrd.tracer)
    multiset = VectorMultiset(size=8, buggy_findslot=buggy)
    vds = vyrd.wrap(multiset)

    def inserter(ctx, x, y):
        yield from vds.insert_pair(ctx, x, y)

    def auditor(ctx):
        for key in (5, 6, 7, 8):
            yield from vds.lookup(ctx, key)

    kernel.spawn(inserter, 5, 6, name="T1")
    kernel.spawn(inserter, 7, 8, name="T2")
    kernel.spawn(auditor, name="T3")
    kernel.run()
    return vyrd, vyrd.check_offline()


def main() -> None:
    print("=" * 72)
    print("1. Correct implementation: refinement holds on every seed we try")
    print("=" * 72)
    for seed in range(5):
        _, outcome = run_pair_race(seed, buggy=False)
        print(f"  seed {seed}: {outcome.summary()}")

    print()
    print("=" * 72)
    print("2. Buggy FindSlot (Fig. 5): hunting for the Fig. 6 interleaving")
    print("=" * 72)
    for seed in range(100):
        vyrd, outcome = run_pair_race(seed, buggy=True)
        if not outcome.ok:
            print(f"  violation found at seed {seed}!")
            print()
            print(format_outcome(outcome, title=f"buggy FindSlot, seed {seed}"))
            print()
            print("3. The trace and its witness interleaving")
            print("-" * 72)
            print(render_trace(vyrd.log))
            print()
            print(render_witness(vyrd.log))
            break
    else:
        print("  no violation in 100 seeds (unexpected -- try more)")


if __name__ == "__main__":
    main()
