"""Setup shim for environments whose setuptools lacks PEP 660 editable
support (no `wheel` package available offline).  Configuration lives in
pyproject.toml."""

from setuptools import setup

setup()
